// Package obs is the observability layer: a lock-cheap metrics registry
// (atomic counters, gauges and fixed-bucket latency histograms exported
// in Prometheus text format), per-query span traces with a ring buffer
// and JSONL export, rolling predictor-accuracy tracking (the paper's
// Fig. 5–7 quantities, live), and an HTTP debug listener exposing
// /metrics, /healthz, /debug/traces and net/http/pprof.
//
// Everything budget-related in Cottage is a measurable claim — the
// chosen budget T, the per-ISN boost/drop decisions, predictor error,
// tail latency — and this package is where those quantities become
// visible outside the experiment harness. Both serving paths feed it:
// the live transport (internal/rpc) records wall-clock spans that flow
// across the wire via injected trace/span IDs, and the simulated twin
// (internal/engine + internal/cluster) records the same span names and
// metrics in virtual time, so harness sweeps validate the
// instrumentation itself.
//
// Hot-path discipline: metric updates are single atomic operations —
// the registry's mutex guards only metric creation and scrapes, never
// updates. Trace recording takes one short mutex per span append and
// one per completed query (the ring buffer), far off the per-posting
// hot path.
package obs

import (
	"sync/atomic"
	"time"
)

// Observer bundles the observability surfaces a component needs: the
// metrics registry, the trace ring buffer, the rolling
// predictor-accuracy tracker, and (optionally) a flight recorder fed
// alongside the ring. A nil *Observer disables all recording; every
// integration point checks for nil before touching it.
type Observer struct {
	Reg    *Registry
	Traces *Recorder
	Acc    *Accuracy
	// Flight, when set, additionally keeps the slowest traces per window
	// plus a reservoir sample (see FlightRecorder). Feed it via AddTrace.
	Flight *FlightRecorder
}

// NewObserver builds an Observer with numISNs predictor-accuracy slots
// and a trace ring buffer of ringSize completed queries. The accuracy
// tracker's gauges are pre-registered under cottage_predictor_*.
func NewObserver(numISNs, ringSize int) *Observer {
	o := &Observer{
		Reg:    NewRegistry(),
		Traces: NewRecorder(ringSize),
		Acc:    NewAccuracy(numISNs),
	}
	o.Acc.Register(o.Reg)
	o.Reg.Register("cottage_trace_spans_dropped_total",
		"Grafted spans dropped by the per-trace span cap (process-wide).",
		&droppedSpans)
	return o
}

// AddTrace records a completed trace in the ring buffer and, when a
// flight recorder is attached, offers it there too. Nil-safe.
func (o *Observer) AddTrace(t *Trace) {
	if o == nil {
		return
	}
	o.Traces.Add(t)
	o.Flight.Add(t)
}

// ID generation: a process-seeded SplitMix64 stream. IDs are unique
// within a process and never zero (zero means "untraced" on the wire).
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano())
)

// NewID returns a fresh non-zero trace or span ID.
func NewID() uint64 {
	z := idSeed + idCounter.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// SpanContext is the propagation envelope injected into RPC requests:
// the trace the request belongs to and the client-side span that parents
// whatever the server records. The zero value means "untraced" and makes
// every downstream recording a no-op.
type SpanContext struct {
	Trace  uint64
	Parent uint64
}

// Traced reports whether the context carries a live trace.
func (sc SpanContext) Traced() bool { return sc.Trace != 0 }
