package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Span is one timed phase of a query: predict fan-out, Algorithm 1
// budget determination, search fan-out, merge, or an ISN-side serve.
// Times are int64 microseconds so the same type carries wall-clock
// spans (UnixMicro) from the live transport and virtual-time spans
// (ms*1000) from the simulated twin. ISN is -1 when the span is not
// tied to a particular ISN.
type Span struct {
	Trace    uint64            `json:"trace"`
	ID       uint64            `json:"id"`
	Parent   uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	ISN      int               `json:"isn"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Decision *DecisionRecord   `json:"decision,omitempty"`
}

// Trace is one completed query's span tree, flattened; the root span is
// the one with Parent == 0.
type Trace struct {
	ID          uint64 `json:"id"`
	StartUnixUS int64  `json:"start_unix_us"`
	Spans       []Span `json:"spans"`
	// DroppedSpans counts grafted spans the builder's span cap refused —
	// a trace that hit the bound under failover+hedge fan-out is still
	// complete on the aggregator side, just missing some server-side
	// children.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// Span returns the span with the given ID, or nil.
func (t *Trace) Span(id uint64) *Span {
	for i := range t.Spans {
		if t.Spans[i].ID == id {
			return &t.Spans[i]
		}
	}
	return nil
}

// Root returns the root span (Parent == 0), or nil.
func (t *Trace) Root() *Span {
	for i := range t.Spans {
		if t.Spans[i].Parent == 0 {
			return &t.Spans[i]
		}
	}
	return nil
}

// DecisionRecord is the Algorithm 1 audit trail attached to a query's
// budget span: what the predictors claimed, what budget T came out,
// which ISN's boosted latency set it, and who got boosted, downclocked
// or dropped. Everything needed to replay the decision by hand.
type DecisionRecord struct {
	BudgetMS       float64        `json:"budget_ms"`
	BudgetISN      int            `json:"budget_isn"` // ISN whose L^boosted set T; -1 if none
	Selected       []int          `json:"selected,omitempty"`
	Boosted        []int          `json:"boosted,omitempty"`
	Downclocked    []int          `json:"downclocked,omitempty"`
	Dropped        []int          `json:"dropped,omitempty"`
	// Truncated lists ISNs whose execution missed the budget but still
	// answered with a truncated anytime result (filled in after the
	// search legs complete, not by Algorithm 1 itself).
	Truncated []int `json:"truncated,omitempty"`
	Missing   []int `json:"missing,omitempty"` // ISNs with no prediction (degraded)
	DegradedMode   string         `json:"degraded_mode,omitempty"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	Reports        []ReportRecord `json:"reports,omitempty"`
}

// ReportRecord is one ISN's predictor inputs and Algorithm 1 outcome.
type ReportRecord struct {
	ISN int `json:"isn"`
	// Replica is which copy of the shard served the prediction leg
	// (replica row index; always 0 on unreplicated fleets).
	Replica       int     `json:"replica,omitempty"`
	QK            int     `json:"q_k"`
	QK2           int     `json:"q_k2"`
	HasK          bool    `json:"has_k"`
	HasK2         bool    `json:"has_k2"`
	LCurrentMS    float64 `json:"l_current_ms"`
	LBoostedMS    float64 `json:"l_boosted_ms"`
	PredLatencyMS float64 `json:"pred_latency_ms"` // operational: margined cycles + queue backlog
	PredServiceMS float64 `json:"pred_service_ms"` // raw (unmargined) service time at assigned freq
	FreqGHz       float64 `json:"freq_ghz"`
	Boosted       bool    `json:"boosted"`
	Downclocked   bool    `json:"downclocked"`
	Cut           bool    `json:"cut"`
	// Truncated and ScoreBound describe an anytime leg that hit its
	// budget: the answer is exact-but-partial, and no unseen document on
	// the ISN scores above ScoreBound.
	Truncated  bool    `json:"truncated,omitempty"`
	ScoreBound float64 `json:"score_bound,omitempty"`
}

// DefaultMaxSpans is the per-trace cap on grafted (server-side) spans.
// The builder's own spans are structurally bounded by the query's
// fan-out, but grafted serve-spans arrive one batch per attempt — under
// failover+hedge churn a single hot trace could otherwise grow a ring
// entry without bound.
const DefaultMaxSpans = 512

// droppedSpans counts cap-refused grafts process-wide; NewObserver
// registers it as cottage_trace_spans_dropped_total.
var droppedSpans Counter

// DroppedSpanTotal returns the process-wide count of spans refused by
// trace span caps.
func DroppedSpanTotal() uint64 { return droppedSpans.Value() }

// TraceBuilder accumulates one query's spans. All methods are safe on a
// nil receiver (no-ops), so call sites need no Obs-enabled branching.
// Span appends take one short mutex acquisition — the builder is per
// query, so contention is bounded by that query's own fan-out.
type TraceBuilder struct {
	mu      sync.Mutex
	trace   uint64
	start   int64
	max     int
	dropped int
	spans   []Span
}

// NewTraceBuilder opens a trace. startUnixUS is informational (the ring
// buffer's notion of when the query ran); span times are independent.
func NewTraceBuilder(startUnixUS int64) *TraceBuilder {
	return &TraceBuilder{trace: NewID(), start: startUnixUS, max: DefaultMaxSpans}
}

// SetMaxSpans overrides the grafted-span cap (<= 0 restores the
// default). Call before recording.
func (b *TraceBuilder) SetMaxSpans(n int) {
	if b == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	b.mu.Lock()
	b.max = n
	b.mu.Unlock()
}

// TraceID returns the trace's ID, or 0 on a nil builder.
func (b *TraceBuilder) TraceID() uint64 {
	if b == nil {
		return 0
	}
	return b.trace
}

// StartSpan opens a span under the given parent span ID (0 = root) at
// startUS. Returns nil on a nil builder.
func (b *TraceBuilder) StartSpan(name string, parent uint64, startUS int64) *ActiveSpan {
	if b == nil {
		return nil
	}
	return &ActiveSpan{
		b: b,
		s: Span{Trace: b.trace, ID: NewID(), Parent: parent, Name: name, ISN: -1, StartUS: startUS},
	}
}

// AddSpans grafts externally recorded spans (e.g. the server-side spans
// an RPC response carried back) into the trace. Spans from a different
// trace are re-homed: that happens when a hedged retry re-sent the
// request and the server echoed stale IDs. Grafts beyond the builder's
// span cap are dropped and counted (Trace.DroppedSpans and the
// process-wide cottage_trace_spans_dropped_total) — the builder's own
// spans are never capped, so the aggregator-side tree stays intact.
func (b *TraceBuilder) AddSpans(spans []Span) {
	if b == nil || len(spans) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range spans {
		if len(b.spans) >= b.max {
			b.dropped++
			droppedSpans.Inc()
			continue
		}
		s.Trace = b.trace
		b.spans = append(b.spans, s)
	}
}

// Finish seals the trace, sorting spans by start time (stable wrt
// insertion for equal starts).
func (b *TraceBuilder) Finish() *Trace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	spans := append([]Span(nil), b.spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return &Trace{ID: b.trace, StartUnixUS: b.start, Spans: spans, DroppedSpans: b.dropped}
}

// ActiveSpan is an open span. All methods are nil-safe no-ops.
type ActiveSpan struct {
	b *TraceBuilder
	s Span
}

// ID returns the span's ID, or 0 on nil.
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// Context returns the propagation envelope for RPCs issued under this
// span. The zero SpanContext (from a nil span) disables server-side
// recording.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.s.Trace, Parent: a.s.ID}
}

// SetAttr annotates the span.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	if a.s.Attrs == nil {
		a.s.Attrs = make(map[string]string)
	}
	a.s.Attrs[key] = value
}

// SetISN ties the span to an ISN.
func (a *ActiveSpan) SetISN(isn int) {
	if a == nil {
		return
	}
	a.s.ISN = isn
}

// SetDecision attaches the Algorithm 1 decision record.
func (a *ActiveSpan) SetDecision(d *DecisionRecord) {
	if a == nil {
		return
	}
	a.s.Decision = d
}

// End closes the span at endUS and appends it to the trace.
func (a *ActiveSpan) End(endUS int64) {
	if a == nil {
		return
	}
	a.s.DurUS = endUS - a.s.StartUS
	if a.s.DurUS < 0 {
		a.s.DurUS = 0
	}
	a.b.mu.Lock()
	a.b.spans = append(a.b.spans, a.s)
	a.b.mu.Unlock()
}

// Recorder is a fixed-size ring buffer of recently completed traces.
type Recorder struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	total uint64
}

// NewRecorder returns a ring holding the last size traces (min 1).
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{ring: make([]*Trace, size)}
}

// Add records a completed trace (nil is ignored).
func (r *Recorder) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Recent returns up to n traces, newest first. n <= 0 means all held.
func (r *Recorder) Recent(n int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < len(r.ring) && len(out) < n; i++ {
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		if t := r.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Total returns how many traces have ever been added.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteJSONL streams the held traces oldest-first, one JSON object per
// line — the export format for offline analysis.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	recent := r.Recent(0)
	enc := json.NewEncoder(w)
	for i := len(recent) - 1; i >= 0; i-- {
		if err := enc.Encode(recent[i]); err != nil {
			return err
		}
	}
	return nil
}
