package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
)

// FlightRecorder is the always-on trace keeper: per time window it
// retains the slowest-N full traces (current window plus the previous
// one, so a fresh window never forgets the tail that just happened)
// and a deterministic reservoir sample of everything else — the
// "normal" baseline the slow traces are compared against. Overhead is
// one short mutex per completed query; traces are held by pointer, so
// the recorder adds no copies beyond what the trace ring already keeps.
//
// Dumps are JSONL — one {"kind","dur_us","trace"} object per line —
// via WriteJSONL, DumpFile, or the /debug/flight endpoint.
type FlightRecorder struct {
	mu       sync.Mutex
	slowN    int
	resN     int
	windowUS int64

	winStart int64
	cur      []flightEntry
	prev     []flightEntry

	res     []*Trace
	resSeen uint64
	rng     uint64

	added uint64
}

type flightEntry struct {
	durUS int64
	t     *Trace
}

// NewFlightRecorder keeps the slowN slowest traces per window (window
// in microseconds of trace start time — wall or virtual, whichever
// clock the traces carry) plus a reservoir of resN others. windowUS <=
// 0 means one unbounded window.
func NewFlightRecorder(slowN, resN int, windowUS int64) *FlightRecorder {
	if slowN < 1 {
		slowN = 1
	}
	if resN < 0 {
		resN = 0
	}
	return &FlightRecorder{
		slowN:    slowN,
		resN:     resN,
		windowUS: windowUS,
		winStart: -1,
		rng:      0x9e3779b97f4a7c15, // fixed seed: deterministic sampling
	}
}

// xorshift64 advances the reservoir PRNG (deterministic across runs).
func (f *FlightRecorder) next() uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

// Add considers one completed trace. Nil-safe; safe for concurrent use.
func (f *FlightRecorder) Add(t *Trace) {
	if f == nil || t == nil {
		return
	}
	var dur int64
	if root := t.Root(); root != nil {
		dur = root.DurUS
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.added++
	if f.winStart < 0 {
		f.winStart = t.StartUnixUS
	}
	if f.windowUS > 0 && t.StartUnixUS >= f.winStart+f.windowUS {
		// Rotate: the finished window's slowest become "previous", so a
		// dump right after rotation still shows the tail just recorded.
		steps := (t.StartUnixUS - f.winStart) / f.windowUS
		f.prev, f.cur = f.cur, nil
		if steps > 1 {
			f.prev = nil // a whole empty window elapsed in between
		}
		f.winStart += steps * f.windowUS
	}
	if len(f.cur) < f.slowN {
		f.cur = append(f.cur, flightEntry{dur, t})
		return
	}
	// Displace the window's current fastest "slow" trace if this one is
	// slower; the displaced (or this) trace falls through to the
	// reservoir of normals.
	minI := 0
	for i := 1; i < len(f.cur); i++ {
		if f.cur[i].durUS < f.cur[minI].durUS {
			minI = i
		}
	}
	sample := t
	if dur > f.cur[minI].durUS {
		sample = f.cur[minI].t
		f.cur[minI] = flightEntry{dur, t}
	}
	if f.resN == 0 {
		return
	}
	f.resSeen++
	if len(f.res) < f.resN {
		f.res = append(f.res, sample)
		return
	}
	if j := f.next() % f.resSeen; j < uint64(f.resN) {
		f.res[j] = sample
	}
}

// Snapshot is the recorder's current holdings.
type FlightSnapshot struct {
	// Added counts every trace ever offered to the recorder.
	Added uint64 `json:"added"`
	// Slowest holds the retained tail traces (current + previous
	// window), slowest first.
	Slowest []*Trace `json:"slowest"`
	// Reservoir holds the deterministic sample of normal traces.
	Reservoir []*Trace `json:"reservoir"`
}

// Snapshot copies the recorder's current state.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Slowest: []*Trace{}, Reservoir: []*Trace{}}
	}
	f.mu.Lock()
	entries := make([]flightEntry, 0, len(f.cur)+len(f.prev))
	entries = append(entries, f.cur...)
	entries = append(entries, f.prev...)
	res := append([]*Trace(nil), f.res...)
	added := f.added
	f.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].durUS > entries[j].durUS })
	slow := make([]*Trace, len(entries))
	for i, e := range entries {
		slow[i] = e.t
	}
	if res == nil {
		res = []*Trace{}
	}
	return FlightSnapshot{Added: added, Slowest: slow, Reservoir: res}
}

// flightLine is one JSONL dump record.
type flightLine struct {
	Kind  string `json:"kind"` // "slow" or "sample"
	DurUS int64  `json:"dur_us"`
	Trace *Trace `json:"trace"`
}

func rootDurUS(t *Trace) int64 {
	if root := t.Root(); root != nil {
		return root.DurUS
	}
	return 0
}

// WriteJSONL streams the recorder's holdings, slow traces first, one
// JSON object per line. Returns the number of lines written.
func (f *FlightRecorder) WriteJSONL(w io.Writer) (int, error) {
	snap := f.Snapshot()
	enc := json.NewEncoder(w)
	lines := 0
	for _, t := range snap.Slowest {
		if err := enc.Encode(flightLine{Kind: "slow", DurUS: rootDurUS(t), Trace: t}); err != nil {
			return lines, err
		}
		lines++
	}
	for _, t := range snap.Reservoir {
		if err := enc.Encode(flightLine{Kind: "sample", DurUS: rootDurUS(t), Trace: t}); err != nil {
			return lines, err
		}
		lines++
	}
	return lines, nil
}

// DumpFile writes the JSONL dump to path, returning the line count.
func (f *FlightRecorder) DumpFile(path string) (int, error) {
	file, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, werr := f.WriteJSONL(file)
	if cerr := file.Close(); werr == nil {
		werr = cerr
	}
	return n, werr
}
