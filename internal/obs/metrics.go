package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add folds v into the float with a CAS loop (lock-free).
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Label is one name/value dimension baked into a metric at creation
// time, so the hot-path update needs no label hashing.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Collector is anything the registry can export: Counter, Gauge,
// GaugeFunc or Histogram.
type Collector interface{ metricKind() string }

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use, so it can live as a struct field (e.g. the overload
// limiter's shed ledger) and be adopted into a Registry later.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a standalone counter (register it with
// Registry.Register to export it).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (*Counter) metricKind() string { return "counter" }

// Gauge is an instantaneous value. The zero value is ready to use.
type Gauge struct{ f atomicFloat }

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.f.Store(v) }

// Add folds a delta into the gauge.
func (g *Gauge) Add(v float64) { g.f.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.f.Load() }

func (*Gauge) metricKind() string { return "gauge" }

// GaugeFunc exports a value computed at scrape time — the adoption path
// for state that already lives elsewhere (limiter occupancy, breaker
// state, cluster virtual time). Fn must be safe for concurrent use.
type GaugeFunc struct{ Fn func() float64 }

func (*GaugeFunc) metricKind() string { return "gauge" }

// Histogram is a fixed-bucket histogram with atomic bucket counters:
// one atomic increment per bucket, one per total count and a CAS-add on
// the sum per Observe — no mutex anywhere on the update path. Bounds
// are upper bucket edges (ascending); an implicit +Inf bucket catches
// the overflow, and min/max are tracked exactly so quantile estimates
// can clamp to the observed range.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomicFloat
	min    atomic.Uint64 // float bits; initialized to +Inf
	max    atomic.Uint64 // float bits; initialized to -Inf
}

// NewHistogram builds a histogram over the given ascending upper bucket
// bounds. The slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// ExpBuckets returns n bounds growing geometrically from start by
// factor: the log-spaced binning internal/stats uses for latency
// classes, reused here for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bounds from start spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("obs: LinearBuckets wants width > 0, n > 0")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i+1)*width
	}
	return b
}

// LatencyBucketsMS is the default latency binning: 0.05 ms to ~26 s in
// 20 doubling buckets, covering fabric round trips through the
// failure-detection timeout.
func LatencyBucketsMS() []float64 { return ExpBuckets(0.05, 2, 20) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

func (*Histogram) metricKind() string { return "histogram" }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Concurrent writers may land between bucket reads, so the bucket sum
// can trail Count by in-flight observations; quantiles remain within
// one bucket of exact either way.
type HistogramSnapshot struct {
	Bounds []float64 // upper bucket edges (no +Inf)
	Counts []uint64  // len(Bounds)+1
	Count  uint64
	Sum    float64
	Min    float64 // +Inf when empty
	Max    float64 // -Inf when empty
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Min:    math.Float64frombits(h.min.Load()),
		Max:    math.Float64frombits(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the snapshot's mean, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, clamped to the observed
// [Min, Max]. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if lo < s.Min {
				lo = s.Min
			}
			if hi > s.Max {
				hi = s.Max
			}
			if hi <= lo {
				return hi
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

// Quantile is Snapshot().Quantile for one-off reads.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// entry is one registered metric with its identity.
type entry struct {
	name   string
	help   string
	labels []Label
	m      Collector
}

// Registry is the scrape surface: a named set of collectors exported in
// Prometheus text format. Creation and scraping lock a mutex; updates
// go straight to the collectors' atomics, so the hot path never touches
// the registry at all once a handle is resolved.
type Registry struct {
	mu      sync.Mutex
	index   map[string]*entry
	ordered []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Register adopts an existing collector under name+labels. If the same
// name+labels is already registered, the existing collector is returned
// unchanged (create-or-get semantics, so re-registering is idempotent);
// a kind mismatch panics — that is a programming error, not a runtime
// condition.
func (r *Registry) Register(name, help string, m Collector, labels ...Label) Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if e, ok := r.index[k]; ok {
		if e.m.metricKind() != m.metricKind() {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, m.metricKind(), e.m.metricKind()))
		}
		return e.m
	}
	e := &entry{name: name, help: help, labels: append([]Label(nil), labels...), m: m}
	r.index[k] = e
	r.ordered = append(r.ordered, e)
	return m
}

// Counter creates (or returns the existing) counter under name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.Register(name, help, NewCounter(), labels...).(*Counter)
}

// Gauge creates (or returns the existing) gauge under name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.Register(name, help, NewGauge(), labels...).(*Gauge)
}

// GaugeFunc registers a scrape-time callback gauge under name+labels.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.Register(name, help, &GaugeFunc{Fn: fn}, labels...)
}

// Histogram creates (or returns the existing) histogram under
// name+labels with the given bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.Register(name, help, NewHistogram(bounds), labels...).(*Histogram)
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		parts[i] = l.Key + `="` + v + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmtFloat(v)
	}
}

func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, grouped by family and sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.ordered...)
	r.mu.Unlock()

	byName := make(map[string][]*entry, len(entries))
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if _, ok := byName[e.name]; !ok {
			names = append(names, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}
	sort.Strings(names)

	for _, name := range names {
		fam := byName[name]
		if fam[0].help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, fam[0].help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].m.metricKind()); err != nil {
			return err
		}
		for _, e := range fam {
			if err := writeEntry(w, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeEntry(w io.Writer, e *entry) error {
	switch m := e.m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, formatLabels(e.labels), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", e.name, formatLabels(e.labels), formatValue(m.Value()))
		return err
	case *GaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", e.name, formatLabels(e.labels), formatValue(m.Fn()))
		return err
	case *Histogram:
		s := m.Snapshot()
		cum := uint64(0)
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = fmtFloat(s.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				e.name, formatLabels(e.labels, L("le", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, formatLabels(e.labels), formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, formatLabels(e.labels), s.Count)
		return err
	default:
		return fmt.Errorf("obs: unknown collector %T", e.m)
	}
}
