package anatomy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"cottage/internal/obs"
	"cottage/internal/stats"
)

// Collector aggregates per-query attributions into the tail-anatomy
// surface: one fixed-bucket histogram per phase (exported as
// cottage_phase_ms{phase=...}), per-bucket exemplar trace IDs (the last
// trace to land in each bucket — follow a tail bucket's exemplar into
// /debug/traces to see the full span tree behind it), and a ring of
// recent attributions for exact quantiles and tail-ownership analysis.
//
// Observe is allocation-free: histogram updates are atomic, exemplar
// slots are atomic stores, and the ring is preallocated behind a short
// mutex. Report (the scrape/debug path) allocates freely.
type Collector struct {
	bounds  []float64
	hists   [NumPhases]*obs.Histogram
	total   *obs.Histogram
	ex      [NumPhases][]atomic.Uint64
	exTotal []atomic.Uint64

	observed atomic.Uint64

	mu     sync.Mutex
	ring   []Attribution
	next   int
	filled int
}

// NewCollector builds a collector whose quantile window holds the last
// `window` queries (minimum 16). Histograms use the shared latency
// binning (obs.LatencyBucketsMS).
func NewCollector(window int) *Collector {
	if window < 16 {
		window = 16
	}
	c := &Collector{
		bounds: obs.LatencyBucketsMS(),
		ring:   make([]Attribution, window),
	}
	for p := range c.hists {
		c.hists[p] = obs.NewHistogram(c.bounds)
		c.ex[p] = make([]atomic.Uint64, len(c.bounds)+1)
	}
	c.total = obs.NewHistogram(c.bounds)
	c.exTotal = make([]atomic.Uint64, len(c.bounds)+1)
	return c
}

// Register exports the collector's histograms and query counter on a
// registry (idempotent under obs create-or-get semantics). Exemplar
// trace IDs are not part of the Prometheus text format; they surface in
// the Report / debug endpoint instead.
func (c *Collector) Register(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		reg.Register("cottage_phase_ms",
			"Per-phase latency attribution of each query's end-to-end time.",
			c.hists[p], obs.L("phase", p.String()))
	}
	reg.Register("cottage_anatomy_total_ms",
		"End-to-end latency as seen by the phase attributor.", c.total)
	reg.GaugeFunc("cottage_anatomy_queries",
		"Queries decomposed into phase attributions.",
		func() float64 { return float64(c.observed.Load()) })
}

// Observe folds one query's attribution into the collector. Nil-safe,
// allocation-free.
func (c *Collector) Observe(a Attribution) {
	if c == nil {
		return
	}
	for p := 0; p < int(NumPhases); p++ {
		v := a.Phase[p]
		c.hists[p].Observe(v)
		c.ex[p][sort.SearchFloat64s(c.bounds, v)].Store(a.TraceID)
	}
	c.total.Observe(a.TotalMS)
	c.exTotal[sort.SearchFloat64s(c.bounds, a.TotalMS)].Store(a.TraceID)
	c.observed.Add(1)
	c.mu.Lock()
	c.ring[c.next] = a
	c.next = (c.next + 1) % len(c.ring)
	if c.filled < len(c.ring) {
		c.filled++
	}
	c.mu.Unlock()
}

// Observed returns how many attributions the collector has seen.
func (c *Collector) Observed() uint64 {
	if c == nil {
		return 0
	}
	return c.observed.Load()
}

// PhaseReport is one phase's row in the anatomy report.
type PhaseReport struct {
	Phase  string  `json:"phase"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	// TailMeanMS is the phase's mean over the tail queries (end-to-end
	// >= p99); TailShare is its fraction of those queries' total time —
	// "who owns the p99" is the argmax of this column.
	TailMeanMS float64 `json:"tail_mean_ms"`
	TailShare  float64 `json:"tail_share"`
	// ExemplarTrace is a trace ID from the phase's highest occupied
	// histogram bucket (0 when the phase never fired) — a concrete worst
	// case to pull from /debug/traces.
	ExemplarTrace uint64 `json:"exemplar_trace,omitempty"`
}

// Report is a point-in-time anatomy analysis over the quantile window.
type Report struct {
	// Queries counts every attribution ever observed; Window is how many
	// of the most recent ones back the quantiles below.
	Queries uint64 `json:"queries"`
	Window  int    `json:"window"`

	TotalMeanMS float64 `json:"total_mean_ms"`
	TotalP50MS  float64 `json:"total_p50_ms"`
	TotalP95MS  float64 `json:"total_p95_ms"`
	TotalP99MS  float64 `json:"total_p99_ms"`

	Phases []PhaseReport `json:"phases"`

	// TailOwner is the phase with the largest share of tail-query time;
	// TailCount is how many window queries sit at or above the p99.
	TailOwner string `json:"tail_owner"`
	TailCount int    `json:"tail_count"`

	// MeanCoverage / MinCoverage report reconciliation: the fraction of
	// each query's end-to-end latency covered by named phases (everything
	// but "other"), averaged / worst-case over the window.
	MeanCoverage float64 `json:"mean_coverage"`
	MinCoverage  float64 `json:"min_coverage"`

	// ExemplarTrace is a trace ID from the slowest occupied bucket of
	// the end-to-end histogram.
	ExemplarTrace uint64 `json:"exemplar_trace,omitempty"`
}

// exemplar returns the trace ID stored in the highest occupied bucket
// of hist, using slots as the per-bucket exemplar store.
func exemplar(hist *obs.Histogram, slots []atomic.Uint64) uint64 {
	s := hist.Snapshot()
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			if id := slots[i].Load(); id != 0 {
				return id
			}
		}
	}
	return 0
}

// Report computes the anatomy analysis over the current window.
func (c *Collector) Report() Report {
	rep := Report{Queries: c.Observed()}
	if c == nil {
		return rep
	}
	c.mu.Lock()
	win := make([]Attribution, c.filled)
	// Ring order does not matter for quantiles; copy in storage order.
	copy(win, c.ring[:c.filled])
	c.mu.Unlock()
	rep.Window = len(win)
	if len(win) == 0 {
		return rep
	}

	totals := make([]float64, len(win))
	phaseVals := make([][]float64, NumPhases)
	for p := range phaseVals {
		phaseVals[p] = make([]float64, len(win))
	}
	minCov, sumCov := 1.0, 0.0
	for i := range win {
		totals[i] = win[i].TotalMS
		for p := 0; p < int(NumPhases); p++ {
			phaseVals[p][i] = win[i].Phase[p]
		}
		cov := 1.0
		if win[i].TotalMS > 0 {
			cov = win[i].NamedMS() / win[i].TotalMS
			if cov > 1 {
				cov = 1
			}
		}
		sumCov += cov
		if cov < minCov {
			minCov = cov
		}
	}
	rep.MeanCoverage = sumCov / float64(len(win))
	rep.MinCoverage = minCov
	rep.TotalMeanMS = stats.Mean(totals)
	rep.TotalP50MS = stats.Percentile(totals, 50)
	rep.TotalP95MS = stats.Percentile(totals, 95)
	rep.TotalP99MS = stats.Percentile(totals, 99)
	rep.ExemplarTrace = exemplar(c.total, c.exTotal)

	// Tail set: window queries at or above the end-to-end p99.
	tailTotal := 0.0
	tailPhase := make([]float64, NumPhases)
	for i := range win {
		if win[i].TotalMS < rep.TotalP99MS {
			continue
		}
		rep.TailCount++
		tailTotal += win[i].TotalMS
		for p := 0; p < int(NumPhases); p++ {
			tailPhase[p] += win[i].Phase[p]
		}
	}

	rep.Phases = make([]PhaseReport, NumPhases)
	ownerShare := -1.0
	for p := Phase(0); p < NumPhases; p++ {
		pr := PhaseReport{
			Phase:         p.String(),
			MeanMS:        stats.Mean(phaseVals[p]),
			P50MS:         stats.Percentile(phaseVals[p], 50),
			P95MS:         stats.Percentile(phaseVals[p], 95),
			P99MS:         stats.Percentile(phaseVals[p], 99),
			ExemplarTrace: exemplar(c.hists[p], c.ex[p]),
		}
		if rep.TailCount > 0 {
			pr.TailMeanMS = tailPhase[p] / float64(rep.TailCount)
		}
		if tailTotal > 0 {
			pr.TailShare = tailPhase[p] / tailTotal
		}
		rep.Phases[p] = pr
		if p != PhaseOther && pr.TailShare > ownerShare {
			ownerShare = pr.TailShare
			rep.TailOwner = pr.Phase
		}
	}
	return rep
}

// WriteText renders the report as the fixed-width table the harness
// experiment prints. Deterministic for identical reports.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %9s %9s %9s %9s %10s\n",
		"phase", "mean ms", "p50 ms", "p95 ms", "p99 ms", "tail-share"); err != nil {
		return err
	}
	for _, pr := range r.Phases {
		if _, err := fmt.Fprintf(w, "%-16s %9.3f %9.3f %9.3f %9.3f %10.3f\n",
			pr.Phase, pr.MeanMS, pr.P50MS, pr.P95MS, pr.P99MS, pr.TailShare); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-16s %9.3f %9.3f %9.3f %9.3f\n",
		"total", r.TotalMeanMS, r.TotalP50MS, r.TotalP95MS, r.TotalP99MS); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"p99 owner: %s (%.1f%% of tail latency over %d tail queries); named phases cover %.1f%% of latency (min %.1f%%)\n",
		r.TailOwner, 100*tailShareOf(r), r.TailCount, 100*r.MeanCoverage, 100*r.MinCoverage)
	return err
}

func tailShareOf(r Report) float64 {
	for _, pr := range r.Phases {
		if pr.Phase == r.TailOwner {
			return pr.TailShare
		}
	}
	return 0
}

// Handler serves the collector's report over HTTP: JSON by default,
// the fixed-width table with ?format=text — the /debug/anatomy
// endpoint.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := c.Report()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = rep.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}
