package anatomy

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"cottage/internal/obs"
)

// attrWith builds an attribution whose total is queue+search+network.
func attrWith(id uint64, queue, search, network float64) Attribution {
	var a Attribution
	a.TraceID = id
	a.Phase[PhaseQueue] = queue
	a.Phase[PhaseSearch] = search
	a.Phase[PhaseNetwork] = network
	a.TotalMS = queue + search + network
	return a
}

func TestCollectorReport(t *testing.T) {
	c := NewCollector(128)
	// 99 fast queries dominated by search, one slow one dominated by
	// queue wait — the tail owner must be the queue.
	for i := 0; i < 99; i++ {
		c.Observe(attrWith(uint64(i+1), 0.1, 5, 0.4))
	}
	c.Observe(attrWith(555, 80, 5, 0.4))

	rep := c.Report()
	if rep.Queries != 100 || rep.Window != 100 {
		t.Fatalf("queries=%d window=%d", rep.Queries, rep.Window)
	}
	if rep.TailOwner != "admission-queue" {
		t.Errorf("tail owner = %q, want admission-queue", rep.TailOwner)
	}
	if rep.TailCount < 1 {
		t.Errorf("tail count = %d", rep.TailCount)
	}
	if rep.TotalP50MS < 5 || rep.TotalP50MS > 6 {
		t.Errorf("p50 = %v", rep.TotalP50MS)
	}
	// Interpolated p99 sits between the fast cluster (5.5) and the slow
	// outlier; the tail set is exactly the outlier.
	if rep.TotalP99MS <= 5.5 {
		t.Errorf("p99 = %v, want above the fast cluster", rep.TotalP99MS)
	}
	if rep.TailCount != 1 {
		t.Errorf("tail count = %d, want 1", rep.TailCount)
	}
	// Every attribution was fully named: coverage is exactly 1.
	if rep.MeanCoverage != 1 || rep.MinCoverage != 1 {
		t.Errorf("coverage mean=%v min=%v", rep.MeanCoverage, rep.MinCoverage)
	}
	// The slow query sits alone in the top total bucket: its trace ID is
	// the report exemplar.
	if rep.ExemplarTrace != 555 {
		t.Errorf("exemplar = %d, want 555", rep.ExemplarTrace)
	}
	if got := rep.Phases[PhaseQueue].ExemplarTrace; got != 555 {
		t.Errorf("queue exemplar = %d, want 555", got)
	}
}

func TestCollectorRegisterExports(t *testing.T) {
	c := NewCollector(16)
	reg := obs.NewRegistry()
	c.Register(reg)
	c.Register(reg) // idempotent
	c.Observe(attrWith(1, 1, 2, 3))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`cottage_phase_ms_bucket{phase="admission-queue"`,
		`cottage_phase_ms_bucket{phase="search"`,
		"cottage_anatomy_total_ms_bucket",
		"cottage_anatomy_queries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestCollectorNilAndEmpty(t *testing.T) {
	var c *Collector
	c.Observe(Attribution{}) // must not panic
	if c.Observed() != 0 {
		t.Error("nil collector observed != 0")
	}
	rep := NewCollector(16).Report()
	if rep.Window != 0 || rep.TailCount != 0 {
		t.Errorf("empty report window=%d tail=%d", rep.Window, rep.TailCount)
	}
}

func TestReportWriteTextShape(t *testing.T) {
	c := NewCollector(16)
	c.Observe(attrWith(1, 1, 8, 1))
	var sb strings.Builder
	if err := c.Report().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one row per phase + total + owner line.
	if want := 1 + int(NumPhases) + 1 + 1; len(lines) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), want, out)
	}
	if !strings.Contains(out, "p99 owner: search") {
		t.Errorf("owner line wrong:\n%s", out)
	}
}

func TestAnatomyHandler(t *testing.T) {
	c := NewCollector(16)
	c.Observe(attrWith(3, 1, 4, 1))
	h := Handler(c)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/anatomy", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Window != 1 || len(rep.Phases) != int(NumPhases) {
		t.Errorf("window=%d phases=%d", rep.Window, len(rep.Phases))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/anatomy?format=text", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "p99 owner:") {
		t.Errorf("text body missing owner line")
	}
}
