// Package anatomy decomposes a query's end-to-end latency into named
// phases — where did the milliseconds go? — and aggregates the answer
// into a tail-anatomy report: per-phase histograms with exemplar trace
// IDs, and "which phase owns the p99?" at p50/p95/p99.
//
// Attribution is derived purely from the span tree obs records, so both
// serving paths feed it with no extra clocks: the live aggregator
// (internal/rpc, wall-clock spans) and the simulated twin
// (internal/engine, virtual-time spans) produce the same span names and
// attrs, and FromTrace reads either shape. The decomposition follows
// the critical path: the aggregator-side predict/budget/merge stages
// are taken at face value, and the search stage is split along the
// shard leg that finished last (the leg the aggregator actually waited
// for) into admission-queue, search service, hedge wait, failover
// retries and network.
//
// Hot-path discipline: FromTrace and Collector.Observe allocate
// nothing in steady state (fixed arrays, atomic exemplar slots, a
// preallocated ring) — the alloc regression test holds them to zero.
package anatomy

import (
	"strconv"

	"cottage/internal/obs"
)

// Phase is one named slice of a query's wall time.
type Phase int

// The phases, in display order. Every microsecond of a query's
// end-to-end latency lands in exactly one: the aggregator stages
// (predict, budget, merge) are their span durations; the search stage
// is split along the critical shard leg; PhaseOther is the residual
// (scheduler slack, span bookkeeping) so the phases always sum to the
// end-to-end total by construction.
const (
	PhasePredict  Phase = iota // prediction fan-out (step 2-3)
	PhaseBudget                // Algorithm 1 budget determination
	PhaseQueue                 // admission-queue wait at the serving ISN
	PhaseNetwork               // client + fabric hops on the critical path
	PhaseSearch                // search service time + straggler wait
	PhaseMerge                 // top-K merge
	PhaseHedge                 // hedge-wait: timer before a winning duplicate
	PhaseFailover              // failover-retry: attempts burned before the answer
	PhaseOther                 // residual (unattributed slack)
	NumPhases
)

var phaseNames = [NumPhases]string{
	"predict", "budget", "admission-queue", "network",
	"search", "merge", "hedge-wait", "failover-retry", "other",
}

// String returns the phase's report/metric label.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// Attribution is one query's decomposed wall time. Phase entries sum to
// TotalMS (PhaseOther absorbs the residual). A value type with no
// pointers, so observing one allocates nothing.
type Attribution struct {
	TraceID uint64
	TotalMS float64
	Phase   [NumPhases]float64
}

// NamedMS returns the time attributed to named phases (everything but
// PhaseOther) — the numerator of the reconciliation check.
func (a *Attribution) NamedMS() float64 {
	s := 0.0
	for p := 0; p < int(PhaseOther); p++ {
		s += a.Phase[p]
	}
	return s
}

func durMS(sp *obs.Span) float64 { return float64(sp.DurUS) / 1000 }

// legFailed reports whether a search.isn span is a failed attempt: the
// live path stamps "error" on exhausted failover legs, the twin stamps
// "failed" / "shed" / "conn_dropped" on legs that returned no hits.
func legFailed(sp *obs.Span) bool {
	if _, ok := sp.Attrs["error"]; ok {
		return true
	}
	if _, ok := sp.Attrs["failed"]; ok {
		return true
	}
	if _, ok := sp.Attrs["shed"]; ok {
		return true
	}
	if _, ok := sp.Attrs["conn_dropped"]; ok {
		return true
	}
	return false
}

// attrF parses a float span attr, returning 0 when absent or malformed.
func attrF(sp *obs.Span, key string) float64 {
	v, ok := sp.Attrs[key]
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		return 0
	}
	return f
}

// FromTrace decomposes a completed trace into a phase attribution.
// Returns ok=false when the trace has no root span or no elapsed time
// (nothing to attribute). Allocation-free on well-formed traces.
//
// Both span shapes are understood:
//
//   - live (internal/rpc): wall-clock spans; the critical search leg
//     carries a grafted "serve.search" child whose queue_wait_us attr
//     splits server time into queue and service, hedge wins are stamped
//     as hedge_wait_us, and failed failover attempts are sibling
//     "search.isn" spans with an "error" attr.
//   - twin (internal/engine): virtual-time spans; legs carry queue_ms /
//     service_ms / hedge_wait_ms / failover_ms attrs directly.
func FromTrace(t *obs.Trace) (Attribution, bool) {
	var a Attribution
	if t == nil {
		return a, false
	}
	spans := t.Spans
	var root *obs.Span
	for i := range spans {
		if spans[i].Parent == 0 {
			root = &spans[i]
			break
		}
	}
	if root == nil || root.DurUS <= 0 {
		return a, false
	}
	a.TraceID = t.ID
	a.TotalMS = durMS(root)

	var predict, budget, searchSp, merge *obs.Span
	for i := range spans {
		sp := &spans[i]
		if sp.Parent != root.ID {
			continue
		}
		switch sp.Name {
		case "predict":
			if predict == nil {
				predict = sp
			}
		case "budget":
			if budget == nil {
				budget = sp
			}
		case "search":
			if searchSp == nil {
				searchSp = sp
			}
		case "merge":
			if merge == nil {
				merge = sp
			}
		}
	}
	if predict != nil {
		a.Phase[PhasePredict] = durMS(predict)
	}
	if budget != nil {
		a.Phase[PhaseBudget] = durMS(budget)
	}
	if merge != nil {
		a.Phase[PhaseMerge] = durMS(merge)
	}

	// Client-side network: root time before the first aggregator stage
	// and after the last one. On the twin this is the modeled client
	// round trip; on the live path it is (near-)zero.
	first, last := int64(-1), int64(-1)
	for _, sp := range [...]*obs.Span{predict, budget, searchSp, merge} {
		if sp == nil {
			continue
		}
		end := sp.StartUS + sp.DurUS
		if first < 0 || sp.StartUS < first {
			first = sp.StartUS
		}
		if end > last {
			last = end
		}
	}
	if first >= 0 {
		if pre := first - root.StartUS; pre > 0 {
			a.Phase[PhaseNetwork] += float64(pre) / 1000
		}
		if post := root.StartUS + root.DurUS - last; post > 0 {
			a.Phase[PhaseNetwork] += float64(post) / 1000
		}
	}

	if searchSp != nil {
		decomposeSearch(spans, searchSp, &a)
	}

	// Residual: whatever the named phases did not cover. Components live
	// inside the root span, so the clamp only fires on pathological
	// (overlapping) trees; phases then still sum to >= TotalMS.
	if rem := a.TotalMS - a.NamedMS(); rem > 0 {
		a.Phase[PhaseOther] = rem
	}
	return a, true
}

// decomposeSearch splits the search stage along the critical shard leg:
// the successful "search.isn" span that ended last is the leg the
// aggregator was actually waiting for.
func decomposeSearch(spans []obs.Span, searchSp *obs.Span, a *Attribution) {
	var crit *obs.Span
	var critEnd int64
	for i := range spans {
		sp := &spans[i]
		if sp.Parent != searchSp.ID || sp.Name != "search.isn" {
			continue
		}
		if legFailed(sp) {
			continue
		}
		if end := sp.StartUS + sp.DurUS; crit == nil || end > critEnd {
			crit, critEnd = sp, end
		}
	}
	searchEnd := searchSp.StartUS + searchSp.DurUS
	if crit == nil {
		// No leg survived: the whole stage was spent burning through
		// failed attempts (or waiting out the budget on them).
		a.Phase[PhaseFailover] += durMS(searchSp)
		return
	}

	legMS := durMS(crit)
	hedge := attrF(crit, "hedge_wait_ms") + attrF(crit, "hedge_wait_us")/1000
	inlineFailover := attrF(crit, "failover_ms") // twin: retries inside the leg span
	queue := attrF(crit, "queue_ms")
	service := attrF(crit, "service_ms")
	if _, ok := crit.Attrs["queue_ms"]; !ok {
		// Live shape: the serving ISN's grafted serve span carries the
		// queue/service split; time on the leg outside it is network.
		for i := range spans {
			sp := &spans[i]
			if sp.Parent != crit.ID || sp.Name != "serve.search" {
				continue
			}
			queue = attrF(sp, "queue_wait_us") / 1000
			if service = durMS(sp) - queue; service < 0 {
				service = 0
			}
			break
		}
	}

	// Failed sibling attempts on the critical shard (live failover runs
	// them serially before the surviving leg, as separate error spans).
	failover := inlineFailover
	for i := range spans {
		sp := &spans[i]
		if sp.Parent != searchSp.ID || sp.Name != "search.isn" || sp == crit || sp.ISN != crit.ISN {
			continue
		}
		if legFailed(sp) {
			failover += durMS(sp)
		}
	}

	a.Phase[PhaseQueue] += queue
	a.Phase[PhaseSearch] += service
	a.Phase[PhaseHedge] += hedge
	a.Phase[PhaseFailover] += failover
	if net := legMS - queue - service - hedge - inlineFailover; net > 0 {
		a.Phase[PhaseNetwork] += net
	}
	// Straggler wait: the stage outlasting its slowest successful leg —
	// the aggregator holding the merge for a budget that expires on
	// dropped shards. That wait is search-stage time.
	if tail := float64(searchEnd-critEnd) / 1000; tail > 0 {
		a.Phase[PhaseSearch] += tail
	}
}
