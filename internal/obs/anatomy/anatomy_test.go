package anatomy

import (
	"math"
	"testing"

	"cottage/internal/obs"
)

// span is a shorthand Span constructor for hand-built trees.
func span(trace, id, parent uint64, name string, isn int, startUS, durUS int64, attrs map[string]string) obs.Span {
	return obs.Span{Trace: trace, ID: id, Parent: parent, Name: name, ISN: isn,
		StartUS: startUS, DurUS: durUS, Attrs: attrs}
}

// twinTrace builds the simulated twin's span shape: virtual-time spans,
// queue/service split carried as leg attrs. Root runs 0..20ms; the
// critical leg (ISN 1) has queue 1ms + service 17.4ms + 0.2ms of fabric.
func twinTrace() *obs.Trace {
	return &obs.Trace{ID: 42, Spans: []obs.Span{
		span(42, 1, 0, "query", -1, 0, 20000, nil),
		span(42, 2, 1, "predict", -1, 200, 1000, nil),
		span(42, 3, 1, "budget", -1, 1200, 0, nil),
		span(42, 4, 1, "search", -1, 1200, 18600, nil),
		span(42, 5, 4, "search.isn", 0, 1200, 13800,
			map[string]string{"queue_ms": "2", "service_ms": "10.5"}),
		span(42, 6, 4, "search.isn", 1, 1200, 18600,
			map[string]string{"queue_ms": "1", "service_ms": "17.4"}),
		span(42, 7, 1, "merge", -1, 19800, 0, nil),
	}}
}

func near(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestFromTraceTwinShape(t *testing.T) {
	a, ok := FromTrace(twinTrace())
	if !ok {
		t.Fatal("FromTrace rejected a well-formed trace")
	}
	if a.TraceID != 42 {
		t.Fatalf("TraceID = %d", a.TraceID)
	}
	near(t, "total", a.TotalMS, 20)
	near(t, "predict", a.Phase[PhasePredict], 1)
	near(t, "budget", a.Phase[PhaseBudget], 0)
	near(t, "queue", a.Phase[PhaseQueue], 1)       // critical leg's queue_ms
	near(t, "search", a.Phase[PhaseSearch], 17.4)  // critical leg's service_ms
	near(t, "network", a.Phase[PhaseNetwork], 0.6) // 0.2 pre + 0.2 post + 0.2 fabric
	near(t, "hedge", a.Phase[PhaseHedge], 0)
	near(t, "failover", a.Phase[PhaseFailover], 0)
	near(t, "other", a.Phase[PhaseOther], 0)
	near(t, "named==total", a.NamedMS()+a.Phase[PhaseOther], a.TotalMS)
}

func TestFromTraceLiveShape(t *testing.T) {
	// Live shape: no queue_ms on the leg; a grafted serve.search child
	// carries queue_wait_us, and its duration minus that wait is service.
	tr := &obs.Trace{ID: 7, Spans: []obs.Span{
		span(7, 1, 0, "query", -1, 0, 10000, nil),
		span(7, 2, 1, "predict", -1, 0, 2000, nil),
		span(7, 3, 1, "budget", -1, 2000, 100, nil),
		span(7, 4, 1, "search", -1, 2100, 7400, nil),
		span(7, 5, 4, "search.isn", 0, 2100, 7400, nil),
		span(7, 6, 5, "serve.search", 0, 2600, 6400,
			map[string]string{"queue_wait_us": "1400", "service_us": "5000"}),
		span(7, 7, 1, "merge", -1, 9500, 400, nil),
	}}
	a, ok := FromTrace(tr)
	if !ok {
		t.Fatal("FromTrace rejected live-shaped trace")
	}
	near(t, "total", a.TotalMS, 10)
	near(t, "predict", a.Phase[PhasePredict], 2)
	near(t, "budget", a.Phase[PhaseBudget], 0.1)
	near(t, "queue", a.Phase[PhaseQueue], 1.4)
	near(t, "search", a.Phase[PhaseSearch], 5) // serve dur 6.4 - queue 1.4
	// Leg net: 7.4 - 1.4 - 5 = 1.0; client post-merge gap: 0.1.
	near(t, "network", a.Phase[PhaseNetwork], 1.1)
	near(t, "merge", a.Phase[PhaseMerge], 0.4)
	near(t, "other", a.Phase[PhaseOther], 0)
	near(t, "named==total", a.NamedMS(), a.TotalMS)
}

func TestFromTraceHedgeAndFailover(t *testing.T) {
	// Critical leg won by a hedge after a 3 ms timer, preceded by a
	// failed attempt on the same shard (live failover shape).
	tr := &obs.Trace{ID: 9, Spans: []obs.Span{
		span(9, 1, 0, "query", -1, 0, 30000, nil),
		span(9, 2, 1, "search", -1, 0, 30000, nil),
		span(9, 3, 2, "search.isn", 0, 0, 4000,
			map[string]string{"error": "connection reset"}),
		span(9, 4, 2, "search.isn", 0, 4000, 26000,
			map[string]string{"queue_ms": "2", "service_ms": "18", "hedge_wait_us": "3000"}),
	}}
	a, ok := FromTrace(tr)
	if !ok {
		t.Fatal("FromTrace rejected trace")
	}
	near(t, "queue", a.Phase[PhaseQueue], 2)
	near(t, "search", a.Phase[PhaseSearch], 18)
	near(t, "hedge", a.Phase[PhaseHedge], 3)
	near(t, "failover", a.Phase[PhaseFailover], 4) // the failed sibling attempt
	// Leg net: 26 - 2 - 18 - 3 = 3.
	near(t, "network", a.Phase[PhaseNetwork], 3)
}

func TestFromTraceTwinFailoverAttr(t *testing.T) {
	// Twin shape: failover detection time is an attr on the one leg span.
	tr := &obs.Trace{ID: 11, Spans: []obs.Span{
		span(11, 1, 0, "query", -1, 0, 12000, nil),
		span(11, 2, 1, "search", -1, 0, 12000, nil),
		span(11, 3, 2, "search.isn", 0, 0, 12000,
			map[string]string{"queue_ms": "0.5", "service_ms": "6", "failover_ms": "4"}),
	}}
	a, ok := FromTrace(tr)
	if !ok {
		t.Fatal("FromTrace rejected trace")
	}
	near(t, "failover", a.Phase[PhaseFailover], 4)
	near(t, "queue", a.Phase[PhaseQueue], 0.5)
	near(t, "search", a.Phase[PhaseSearch], 6)
	near(t, "network", a.Phase[PhaseNetwork], 1.5) // 12 - 0.5 - 6 - 4
}

func TestFromTraceAllLegsFailed(t *testing.T) {
	tr := &obs.Trace{ID: 13, Spans: []obs.Span{
		span(13, 1, 0, "query", -1, 0, 8000, nil),
		span(13, 2, 1, "search", -1, 0, 8000, nil),
		span(13, 3, 2, "search.isn", 0, 0, 8000,
			map[string]string{"failed": "true"}),
	}}
	a, ok := FromTrace(tr)
	if !ok {
		t.Fatal("FromTrace rejected trace")
	}
	near(t, "failover", a.Phase[PhaseFailover], 8)
	near(t, "search", a.Phase[PhaseSearch], 0)
}

func TestFromTraceStragglerWait(t *testing.T) {
	// Search stage outlasts its slowest successful leg (budget expiry on
	// a dropped shard): the wait is charged to the search phase.
	tr := &obs.Trace{ID: 15, Spans: []obs.Span{
		span(15, 1, 0, "query", -1, 0, 25000, nil),
		span(15, 2, 1, "search", -1, 0, 25000, nil),
		span(15, 3, 2, "search.isn", 0, 0, 10000,
			map[string]string{"queue_ms": "0", "service_ms": "9.9"}),
		span(15, 4, 2, "search.isn", 1, 0, 15000,
			map[string]string{"conn_dropped": "true"}),
	}}
	a, ok := FromTrace(tr)
	if !ok {
		t.Fatal("FromTrace rejected trace")
	}
	// service 9.9 + straggler wait (25 - 10) = 24.9.
	near(t, "search", a.Phase[PhaseSearch], 24.9)
}

func TestFromTraceRejects(t *testing.T) {
	if _, ok := FromTrace(nil); ok {
		t.Error("nil trace accepted")
	}
	if _, ok := FromTrace(&obs.Trace{ID: 1}); ok {
		t.Error("rootless trace accepted")
	}
	zero := &obs.Trace{ID: 2, Spans: []obs.Span{span(2, 1, 0, "query", -1, 0, 0, nil)}}
	if _, ok := FromTrace(zero); ok {
		t.Error("zero-duration root accepted")
	}
}

func TestAttrFMalformed(t *testing.T) {
	sp := &obs.Span{Attrs: map[string]string{"a": "not-a-number", "b": "-3", "c": "2.5"}}
	if v := attrF(sp, "a"); v != 0 {
		t.Errorf("malformed attr parsed to %v", v)
	}
	if v := attrF(sp, "b"); v != 0 {
		t.Errorf("negative attr parsed to %v", v)
	}
	if v := attrF(sp, "c"); v != 2.5 {
		t.Errorf("attr c = %v", v)
	}
	if v := attrF(sp, "missing"); v != 0 {
		t.Errorf("missing attr parsed to %v", v)
	}
}

// TestAttributionHotPathAllocs is the regression gate for the
// aggregator hot path: decomposing a trace and folding it into the
// collector must not allocate in steady state.
func TestAttributionHotPathAllocs(t *testing.T) {
	tr := twinTrace()
	c := NewCollector(64)
	// Warm up: first observations may touch lazily-initialized state.
	for i := 0; i < 10; i++ {
		if a, ok := FromTrace(tr); ok {
			c.Observe(a)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		a, ok := FromTrace(tr)
		if !ok {
			t.Fatal("FromTrace rejected trace")
		}
		c.Observe(a)
	})
	if allocs != 0 {
		t.Fatalf("FromTrace+Observe allocates %v per run, want 0", allocs)
	}
}
