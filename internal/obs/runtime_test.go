package obs

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestCaptureCPUProfile(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	done := make(chan error, 1)
	go func() { done <- CaptureCPUProfile(path, 150*time.Millisecond) }()
	// A second capture while the first runs must be refused, not queued.
	time.Sleep(30 * time.Millisecond)
	if err := CaptureCPUProfile(path+".2", time.Millisecond); !errors.Is(err, ErrProfileActive) {
		t.Errorf("concurrent capture = %v, want ErrProfileActive", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Synchronous contract: the profile is flushed by the time it returns.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("profile file is empty after capture returned")
	}
	// And the slot is free again.
	if err := CaptureCPUProfile(path, time.Millisecond); err != nil {
		t.Errorf("capture after release: %v", err)
	}
}
