package obs

import (
	"errors"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// memSampler caches runtime.ReadMemStats behind a minimum interval:
// ReadMemStats stops the world, so three gauges scraped together must
// not pay for it three times (nor at all on a tight scrape loop).
type memSampler struct {
	mu       sync.Mutex
	last     time.Time
	ms       runtime.MemStats
	minEvery time.Duration
}

func (s *memSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= s.minEvery {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return s.ms
}

// gcPauseP99MS computes the p99 of the runtime's recent GC pause ring.
func gcPauseP99MS(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return float64(pauses[idx]) / 1e6
}

// RegisterRuntimeMetrics exports Go process health on a registry:
// goroutine count, heap in use, GC pause p99 and GC cycle count —
// /metrics covers the process, not just the application counters.
// Idempotent (create-or-get), called automatically by StartDebug.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	s := &memSampler{minEvery: time.Second}
	reg.GaugeFunc("cottage_go_goroutines",
		"Live goroutines.", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("cottage_go_heap_inuse_bytes",
		"Heap bytes in use (runtime.MemStats.HeapInuse, sampled at most 1/s).",
		func() float64 { ms := s.stats(); return float64(ms.HeapInuse) })
	reg.GaugeFunc("cottage_go_gc_pause_p99_ms",
		"p99 of recent GC stop-the-world pauses.",
		func() float64 { ms := s.stats(); return gcPauseP99MS(&ms) })
	reg.GaugeFunc("cottage_go_gc_total",
		"Completed GC cycles.",
		func() float64 { ms := s.stats(); return float64(ms.NumGC) })
}

// ErrProfileActive is returned when a CPU capture is already running —
// pprof allows only one, and a burn-rate flap must not stack captures.
var ErrProfileActive = errors.New("obs: cpu profile capture already active")

var cpuProfiling atomic.Bool

// CaptureCPUProfile records a CPU profile to path for dur and returns
// once the profile is flushed (the breach-triggered capture: an SLO
// page spawns this in a goroutine and goes back to serving; the caller
// owns the goroutine so it can wait for the flush before exiting). At
// most one capture runs at a time; a second request during a capture
// returns ErrProfileActive.
func CaptureCPUProfile(path string, dur time.Duration) error {
	if !cpuProfiling.CompareAndSwap(false, true) {
		return ErrProfileActive
	}
	defer cpuProfiling.Store(false)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()
	return f.Close()
}
