package obs

import "strconv"

// Accuracy tracks rolling predictor error per ISN — the live version of
// the paper's Fig. 5–7 quantities: absolute latency-prediction error
// (percent of actual) and the quality predictor's top-K hit rate
// (predicted "contributes to top K" vs. whether the ISN actually placed
// a document in the merged top K). Fixed per-ISN slots, atomic fields,
// no locking.
type Accuracy struct {
	isns []accISN
}

type accISN struct {
	latSamples    Counter
	sumAbsErrPct  atomicFloat
	ewmaAbsErrPct atomicFloat
	qualSamples   Counter
	qualHits      Counter
}

// ewmaAlpha weights recent queries ~8x a long-run mean; rolling enough
// to show drift, stable enough to read off a gauge.
const ewmaAlpha = 1.0 / 8

// NewAccuracy returns a tracker with numISNs slots.
func NewAccuracy(numISNs int) *Accuracy {
	if numISNs < 0 {
		numISNs = 0
	}
	return &Accuracy{isns: make([]accISN, numISNs)}
}

// ObserveLatency records one latency prediction vs. its measured
// outcome, both in ms. Out-of-range ISNs and non-positive actuals are
// ignored.
func (a *Accuracy) ObserveLatency(isn int, predMS, actualMS float64) {
	if a == nil || isn < 0 || isn >= len(a.isns) || actualMS <= 0 {
		return
	}
	s := &a.isns[isn]
	errPct := (predMS - actualMS) / actualMS * 100
	if errPct < 0 {
		errPct = -errPct
	}
	s.sumAbsErrPct.Add(errPct)
	n := s.latSamples.Value()
	s.latSamples.Inc()
	if n == 0 {
		s.ewmaAbsErrPct.Store(errPct)
		return
	}
	// Racy read-modify-write is fine: the EWMA is a display quantity and
	// a lost update shifts it by at most one sample's weight.
	old := s.ewmaAbsErrPct.Load()
	s.ewmaAbsErrPct.Store(old + ewmaAlpha*(errPct-old))
}

// ObserveQuality records one quality prediction (predicted HasK) vs.
// whether the ISN actually contributed to the merged top K.
func (a *Accuracy) ObserveQuality(isn int, predicted, actual bool) {
	if a == nil || isn < 0 || isn >= len(a.isns) {
		return
	}
	s := &a.isns[isn]
	s.qualSamples.Inc()
	if predicted == actual {
		s.qualHits.Inc()
	}
}

// EWMAAbsErrPct returns one ISN's rolling absolute latency-prediction
// error (percent of actual; 0 = no data) — the cheap read the replica
// selector uses as its quality tiebreak.
func (a *Accuracy) EWMAAbsErrPct(isn int) float64 {
	if a == nil || isn < 0 || isn >= len(a.isns) {
		return 0
	}
	return a.isns[isn].ewmaAbsErrPct.Load()
}

// ISNAccuracy is one ISN's rolling accuracy snapshot.
type ISNAccuracy struct {
	ISN           int     `json:"isn"`
	LatSamples    uint64  `json:"lat_samples"`
	MeanAbsErrPct float64 `json:"mean_abs_err_pct"`
	EWMAAbsErrPct float64 `json:"ewma_abs_err_pct"`
	QualSamples   uint64  `json:"qual_samples"`
	QualHitRate   float64 `json:"qual_hit_rate"`
}

// Snapshot returns every ISN's current accuracy figures.
func (a *Accuracy) Snapshot() []ISNAccuracy {
	if a == nil {
		return nil
	}
	out := make([]ISNAccuracy, len(a.isns))
	for i := range a.isns {
		s := &a.isns[i]
		out[i] = ISNAccuracy{
			ISN:           i,
			LatSamples:    s.latSamples.Value(),
			EWMAAbsErrPct: s.ewmaAbsErrPct.Load(),
			QualSamples:   s.qualSamples.Value(),
		}
		if out[i].LatSamples > 0 {
			out[i].MeanAbsErrPct = s.sumAbsErrPct.Load() / float64(out[i].LatSamples)
		}
		if out[i].QualSamples > 0 {
			out[i].QualHitRate = float64(s.qualHits.Value()) / float64(out[i].QualSamples)
		}
	}
	return out
}

// Register exposes the per-ISN accuracy figures as scrape-time gauges
// under cottage_predictor_*.
func (a *Accuracy) Register(reg *Registry) {
	if a == nil || reg == nil {
		return
	}
	for i := range a.isns {
		s := &a.isns[i]
		isn := L("isn", strconv.Itoa(i))
		reg.GaugeFunc("cottage_predictor_latency_abs_err_pct",
			"Rolling (EWMA) absolute latency-prediction error as percent of actual, per ISN.",
			s.ewmaAbsErrPct.Load, isn)
		reg.GaugeFunc("cottage_predictor_latency_mean_abs_err_pct",
			"Lifetime mean absolute latency-prediction error as percent of actual, per ISN.",
			func() float64 {
				n := s.latSamples.Value()
				if n == 0 {
					return 0
				}
				return s.sumAbsErrPct.Load() / float64(n)
			}, isn)
		reg.GaugeFunc("cottage_predictor_quality_hit_rate",
			"Fraction of queries where the quality predictor's top-K call matched the ISN's actual top-K contribution.",
			func() float64 {
				n := s.qualSamples.Value()
				if n == 0 {
					return 0
				}
				return float64(s.qualHits.Value()) / float64(n)
			}, isn)
		reg.Register("cottage_predictor_latency_samples",
			"Latency-prediction samples observed per ISN.", &s.latSamples, isn)
		reg.Register("cottage_predictor_quality_samples",
			"Quality-prediction samples observed per ISN.", &s.qualSamples, isn)
	}
}
