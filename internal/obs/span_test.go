package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewIDNonZeroUnique(t *testing.T) {
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %#x", id)
		}
		seen[id] = true
	}
}

func TestTraceBuilderNesting(t *testing.T) {
	b := NewTraceBuilder(1000)
	root := b.StartSpan("query", 0, 0)
	predict := b.StartSpan("predict", root.ID(), 10)
	predict.End(50)
	budget := b.StartSpan("budget", root.ID(), 50)
	budget.SetDecision(&DecisionRecord{BudgetMS: 12.5, BudgetISN: 3})
	budget.End(60)
	root.End(200)

	tr := b.Finish()
	if tr.ID != b.TraceID() {
		t.Fatalf("trace ID mismatch: %d vs %d", tr.ID, b.TraceID())
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	r := tr.Root()
	if r == nil || r.Name != "query" {
		t.Fatalf("root = %+v, want query span", r)
	}
	for _, name := range []string{"predict", "budget"} {
		s := tr.Find(name)
		if s == nil {
			t.Fatalf("missing span %q", name)
		}
		if s.Parent != r.ID {
			t.Errorf("%s.Parent = %d, want root %d", name, s.Parent, r.ID)
		}
		if s.StartUS < r.StartUS || s.StartUS+s.DurUS > r.StartUS+r.DurUS {
			t.Errorf("%s [%d,%d] not nested in root [%d,%d]",
				name, s.StartUS, s.StartUS+s.DurUS, r.StartUS, r.StartUS+r.DurUS)
		}
	}
	if d := tr.Find("budget").Decision; d == nil || d.BudgetISN != 3 {
		t.Fatalf("budget decision = %+v, want BudgetISN 3", tr.Find("budget").Decision)
	}
	// Spans sorted by start time.
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].StartUS < tr.Spans[i-1].StartUS {
			t.Fatal("spans not sorted by StartUS")
		}
	}
}

func TestNilBuilderSafe(t *testing.T) {
	var b *TraceBuilder
	if b.TraceID() != 0 {
		t.Fatal("nil builder TraceID != 0")
	}
	s := b.StartSpan("x", 0, 0)
	if s != nil {
		t.Fatal("nil builder StartSpan != nil")
	}
	// All ActiveSpan methods must no-op on nil.
	s.SetAttr("k", "v")
	s.SetISN(1)
	s.SetDecision(&DecisionRecord{})
	s.End(10)
	if s.ID() != 0 {
		t.Fatal("nil span ID != 0")
	}
	if sc := s.Context(); sc.Traced() {
		t.Fatal("nil span context claims traced")
	}
	b.AddSpans([]Span{{Name: "orphan"}})
	if tr := b.Finish(); tr != nil {
		t.Fatal("nil builder Finish != nil")
	}
}

func TestAddSpansRehomes(t *testing.T) {
	b := NewTraceBuilder(0)
	b.AddSpans([]Span{{Trace: 999, ID: 42, Name: "serve"}})
	tr := b.Finish()
	if len(tr.Spans) != 1 || tr.Spans[0].Trace != b.TraceID() {
		t.Fatalf("grafted span not re-homed: %+v", tr.Spans)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{ID: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	recent := r.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("held %d traces, want 3", len(recent))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %d, want %d", i, recent[i].ID, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("Recent(2) = %v", got)
	}
}

func TestRecorderJSONL(t *testing.T) {
	r := NewRecorder(4)
	r.Add(&Trace{ID: 1, Spans: []Span{{Trace: 1, ID: 2, Name: "query", ISN: -1}}})
	r.Add(&Trace{ID: 3})
	var out strings.Builder
	if err := r.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	var ids []uint64
	for sc.Scan() {
		var tr Trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		ids = append(ids, tr.ID)
	}
	// Oldest first.
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("JSONL ids = %v, want [1 3]", ids)
	}
}

func TestAddSpansCapDropsGrafts(t *testing.T) {
	tb := NewTraceBuilder(0)
	tb.SetMaxSpans(4)
	root := tb.StartSpan("query", 0, 0)
	before := DroppedSpanTotal()
	// Graft more serve-spans than the cap allows.
	for i := 0; i < 10; i++ {
		tb.AddSpans([]Span{{ID: NewID(), Parent: root.ID(), Name: "serve.search", StartUS: int64(i), DurUS: 1}})
	}
	// The builder's own spans are never capped: the root still lands.
	root.End(100)
	tr := tb.Finish()
	if got := len(tr.Spans); got != 5 { // 4 grafts + root
		t.Fatalf("kept %d spans, want 5", got)
	}
	if tr.DroppedSpans != 6 {
		t.Fatalf("DroppedSpans = %d, want 6", tr.DroppedSpans)
	}
	if got := DroppedSpanTotal() - before; got != 6 {
		t.Fatalf("process-wide drop counter advanced %d, want 6", got)
	}
	if tr.Root() == nil {
		t.Fatal("root span was dropped")
	}
}

func TestSetMaxSpansDefaults(t *testing.T) {
	tb := NewTraceBuilder(0)
	tb.SetMaxSpans(-1) // restores the default
	spans := make([]Span, DefaultMaxSpans+5)
	for i := range spans {
		spans[i] = Span{ID: NewID(), Name: "serve.search"}
	}
	tb.AddSpans(spans)
	if tr := tb.Finish(); len(tr.Spans) != DefaultMaxSpans || tr.DroppedSpans != 5 {
		t.Fatalf("kept %d dropped %d, want %d/5", len(tr.Spans), tr.DroppedSpans, DefaultMaxSpans)
	}
	var nilB *TraceBuilder
	nilB.SetMaxSpans(10) // nil-safe
}
