package obs

import (
	"strings"
	"testing"
)

// flightTrace builds a single-span trace starting at startUS lasting
// durUS.
func flightTrace(id uint64, startUS, durUS int64) *Trace {
	return &Trace{ID: id, StartUnixUS: startUS, Spans: []Span{
		{Trace: id, ID: 1, Parent: 0, Name: "query", ISN: -1, StartUS: startUS, DurUS: durUS},
	}}
}

func TestFlightKeepsSlowest(t *testing.T) {
	f := NewFlightRecorder(3, 2, 0)
	for i := int64(1); i <= 10; i++ {
		f.Add(flightTrace(uint64(i), i*1000, i*100)) // durations 100..1000
	}
	snap := f.Snapshot()
	if snap.Added != 10 {
		t.Fatalf("added = %d", snap.Added)
	}
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest = %d traces", len(snap.Slowest))
	}
	// Slowest first: traces 10, 9, 8.
	for i, want := range []uint64{10, 9, 8} {
		if snap.Slowest[i].ID != want {
			t.Errorf("slowest[%d] = trace %d, want %d", i, snap.Slowest[i].ID, want)
		}
	}
	if len(snap.Reservoir) != 2 {
		t.Errorf("reservoir = %d traces, want 2", len(snap.Reservoir))
	}
}

func TestFlightWindowRotation(t *testing.T) {
	f := NewFlightRecorder(2, 0, 1000)
	f.Add(flightTrace(1, 0, 500))
	f.Add(flightTrace(2, 100, 900))
	// Next window: the first window's slowest become "previous".
	f.Add(flightTrace(3, 1500, 50))
	snap := f.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest after rotation = %d, want current+previous = 3", len(snap.Slowest))
	}
	// A whole empty window elapsing drops the previous window.
	f.Add(flightTrace(4, 5000, 10))
	snap = f.Snapshot()
	if len(snap.Slowest) != 1 {
		t.Fatalf("slowest after gap = %d, want 1", len(snap.Slowest))
	}
	if snap.Slowest[0].ID != 4 {
		t.Errorf("survivor = trace %d, want 4", snap.Slowest[0].ID)
	}
}

func TestFlightDeterministicSampling(t *testing.T) {
	run := func() []uint64 {
		f := NewFlightRecorder(2, 3, 0)
		for i := int64(1); i <= 100; i++ {
			f.Add(flightTrace(uint64(i), i, 100-i))
		}
		var ids []uint64
		for _, tr := range f.Snapshot().Reservoir {
			ids = append(ids, tr.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("reservoir sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir not deterministic: %v vs %v", a, b)
		}
	}
}

func TestFlightWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(2, 2, 0)
	for i := int64(1); i <= 6; i++ {
		f.Add(flightTrace(uint64(i), i, i*10))
	}
	var sb strings.Builder
	n, err := f.WriteJSONL(&sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if n != len(lines) || n != 4 { // 2 slow + 2 sampled
		t.Fatalf("n=%d lines=%d, want 4", n, len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"slow"`) {
		t.Errorf("first line not slow: %s", lines[0])
	}
	if !strings.Contains(lines[n-1], `"kind":"sample"`) {
		t.Errorf("last line not sample: %s", lines[n-1])
	}
}

func TestFlightDumpFile(t *testing.T) {
	f := NewFlightRecorder(2, 0, 0)
	f.Add(flightTrace(1, 0, 100))
	path := t.TempDir() + "/flight.jsonl"
	n, err := f.DumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("dumped %d lines, want 1", n)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Add(flightTrace(1, 0, 1))
	snap := f.Snapshot()
	if snap.Added != 0 || len(snap.Slowest) != 0 || len(snap.Reservoir) != 0 {
		t.Errorf("nil snapshot %+v", snap)
	}
	var sb strings.Builder
	if n, err := f.WriteJSONL(&sb); n != 0 || err != nil {
		t.Errorf("nil WriteJSONL = %d, %v", n, err)
	}
}

func TestObserverAddTraceFeedsFlight(t *testing.T) {
	o := NewObserver(2, 4)
	o.Flight = NewFlightRecorder(2, 0, 0)
	o.AddTrace(flightTrace(9, 0, 123))
	if o.Traces.Total() != 1 {
		t.Error("ring missed the trace")
	}
	if snap := o.Flight.Snapshot(); snap.Added != 1 {
		t.Error("flight recorder missed the trace")
	}
	var nilObs *Observer
	nilObs.AddTrace(flightTrace(1, 0, 1)) // must not panic
}
