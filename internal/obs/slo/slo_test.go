package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"cottage/internal/obs"
)

// clock is a settable virtual millisecond clock.
type clock struct{ ms float64 }

func (c *clock) now() float64 { return c.ms }

func newTestMonitor(c *clock) *Monitor {
	return New(Config{
		FastWindowMS: 1000,
		SlowWindowMS: 10_000,
		WarnBurn:     1,
		PageBurn:     8,
		Buckets:      10,
		NowMS:        c.now,
	})
}

func TestBurnMath(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	o := m.Objective("latency", 0.1) // 10% error budget

	// 8 good + 2 bad = 20% bad = burn 2 on both windows.
	for i := 0; i < 8; i++ {
		o.Observe(true)
	}
	o.Observe(false)
	o.Observe(false)
	fast, slow := o.Burn()
	if fast != 2 || slow != 2 {
		t.Fatalf("burn = %v/%v, want 2/2", fast, slow)
	}
	// 20% bad burns the budget faster than it accrues but below the page
	// multiplier: warn.
	if o.State() != StateWarn {
		t.Fatalf("state = %v, want warn", o.State())
	}
}

func TestPageRequiresBothWindows(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	o := m.Objective("latency", 0.01)

	// Seed the slow window with a long healthy history, then blast the
	// fast window with failures: the slow window's burn stays low, so no
	// page — a short burst is not a sustained outage.
	for i := 0; i < 1000; i++ {
		c.ms += 9
		o.Observe(true)
	}
	for i := 0; i < 10; i++ {
		c.ms += 1
		o.Observe(false)
	}
	fast, slow := o.Burn()
	if fast < 8 {
		t.Fatalf("fast burn = %v, want >= 8 after the burst", fast)
	}
	if slow >= 8 {
		t.Fatalf("slow burn = %v, want < 8 with healthy history", slow)
	}
	if o.State() == StatePage {
		t.Fatal("paged on a fast-window burst alone")
	}

	// Sustained failures push the slow window over too: now it pages.
	for i := 0; i < 200; i++ {
		c.ms += 10
		o.Observe(false)
	}
	if o.State() != StatePage {
		t.Fatalf("state = %v, want page after sustained failures", o.State())
	}
	if o.Pages() != 1 {
		t.Fatalf("pages = %d, want 1", o.Pages())
	}
}

func TestWindowExpiry(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	o := m.Objective("q", 0.1)
	o.Observe(false)
	if fast, _ := o.Burn(); fast == 0 {
		t.Fatal("bad event not counted")
	}
	// Advance past the fast window: the failure ages out of it.
	c.ms += 2000
	fast, slow := o.Burn()
	if fast != 0 {
		t.Fatalf("fast burn = %v after expiry, want 0", fast)
	}
	if slow == 0 {
		t.Fatal("slow window expired too early")
	}
	// And past the slow window too.
	c.ms += 20_000
	if _, slow = o.Burn(); slow != 0 {
		t.Fatalf("slow burn = %v after expiry, want 0", slow)
	}
}

func TestOnPageCallback(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	var fired []string
	m.OnPage(func(o *Objective) { fired = append(fired, o.Name()) })
	o := m.Objective("latency", 0.01)
	for i := 0; i < 50; i++ {
		c.ms += 1
		o.Observe(false)
	}
	if len(fired) != 1 || fired[0] != "latency" {
		t.Fatalf("OnPage fired %v, want once for latency", fired)
	}
	// Staying in page must not re-fire; recovering and re-breaching must.
	for i := 0; i < 3000; i++ {
		c.ms += 10
		o.Observe(true)
	}
	if o.State() != StateOK {
		t.Fatalf("state = %v after recovery, want ok", o.State())
	}
	for i := 0; i < 5000; i++ {
		c.ms += 10
		o.Observe(false)
	}
	if len(fired) != 2 {
		t.Fatalf("OnPage fired %d times, want 2", len(fired))
	}
}

func TestObjectiveCreateOrGet(t *testing.T) {
	m := newTestMonitor(&clock{})
	a := m.Objective("x", 0.1)
	b := m.Objective("x", 0.5)
	if a != b {
		t.Fatal("Objective did not return the existing objective")
	}
	if len(m.Objectives()) != 1 {
		t.Fatalf("objectives = %d", len(m.Objectives()))
	}
	if m.Objective("zero", 0).Target() != 0.001 {
		t.Error("non-positive target not clamped")
	}
}

func TestMonitorRegister(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	o := m.Objective("latency", 0.1)
	reg := obs.NewRegistry()
	m.Register(reg)
	o.Observe(false)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`cottage_slo_burn{objective="latency",window="fast"}`,
		`cottage_slo_burn{objective="latency",window="slow"}`,
		`cottage_slo_alert{objective="latency"}`,
		`cottage_slo_pages_total{objective="latency"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestSLOHandler(t *testing.T) {
	c := &clock{}
	m := newTestMonitor(c)
	m.Objective("latency", 0.1).Observe(true)
	rr := httptest.NewRecorder()
	Handler(m).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snaps []Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Name != "latency" || snaps[0].State != "ok" {
		t.Fatalf("snapshot %+v", snaps)
	}
}

func TestQuerySLO(t *testing.T) {
	var q *QuerySLO
	q.ObserveQuery(1, false) // nil-safe
	q.ObservePower(1)

	c := &clock{}
	m := newTestMonitor(c)
	q = &QuerySLO{
		LatencyMS: 10,
		PowerCapW: 100,
		Latency:   m.Objective("latency", 0.1),
		Quality:   m.Objective("quality", 0.1),
		Power:     m.Objective("power", 0.1),
	}
	q.ObserveQuery(5, false)  // fast, intact
	q.ObserveQuery(50, true)  // slow, degraded
	q.ObservePower(90)        // under cap
	q.ObservePower(150)       // over cap
	for _, tc := range []struct {
		o    *Objective
		want float64
	}{{q.Latency, 5}, {q.Quality, 5}, {q.Power, 5}} {
		if fast, _ := tc.o.Burn(); fast != tc.want {
			t.Errorf("%s fast burn = %v, want %v", tc.o.Name(), fast, tc.want)
		}
	}
}
