// Package slo implements multi-window burn-rate monitoring over
// service-level objectives — the SRE alerting pattern: an objective
// grants an error budget (the allowed bad fraction, e.g. 1% of queries
// over the latency target), and the burn rate is how many times faster
// than budget the service is consuming it. Alerting on the burn rate
// over TWO windows at once — a fast window for responsiveness and a
// slow window for evidence — pages quickly on hard outages without
// flapping on single slow queries.
//
// The clock is injectable as a float64 millisecond timestamp, so the
// same monitor runs on wall time (the live aggregator) and on the
// simulated twin's virtual clock — burn-rate behaviour is testable
// deterministically.
package slo

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"cottage/internal/obs"
)

// State is an objective's alert level.
type State int32

const (
	StateOK   State = iota
	StateWarn       // both windows burning faster than budget
	StatePage       // both windows burning faster than PageBurn× budget
)

// String returns the state's label.
func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	default:
		return "ok"
	}
}

// Config parameterizes a Monitor. Zero values take the defaults noted.
type Config struct {
	// FastWindowMS / SlowWindowMS are the two burn-rate windows
	// (defaults: 60 s and 720 s). The fast window notices a breach
	// quickly; the slow window keeps one bad burst from paging.
	FastWindowMS float64
	SlowWindowMS float64
	// WarnBurn / PageBurn are the burn-rate thresholds (defaults 1 and
	// 8): burn 1 means the error budget is being consumed exactly as
	// fast as it accrues.
	WarnBurn float64
	PageBurn float64
	// Buckets is the sliding-window resolution (default 24 buckets per
	// window).
	Buckets int
	// NowMS supplies the clock in milliseconds. Defaults to wall time;
	// the twin passes its virtual clock.
	NowMS func() float64
}

func (c *Config) fill() {
	if c.FastWindowMS <= 0 {
		c.FastWindowMS = 60_000
	}
	if c.SlowWindowMS <= 0 {
		c.SlowWindowMS = 720_000
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 1
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 24
	}
	if c.NowMS == nil {
		c.NowMS = func() float64 { return float64(time.Now().UnixNano()) / 1e6 }
	}
}

// Monitor owns a set of objectives sharing one clock and one set of
// burn thresholds.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	objs   []*Objective
	onPage func(*Objective)
}

// New builds a monitor.
func New(cfg Config) *Monitor {
	cfg.fill()
	return &Monitor{cfg: cfg}
}

// OnPage installs a callback fired (outside any lock) whenever an
// objective transitions into StatePage — the hook that triggers flight
// recorder dumps and pprof captures.
func (m *Monitor) OnPage(fn func(*Objective)) {
	m.mu.Lock()
	m.onPage = fn
	m.mu.Unlock()
}

// Objective creates (or returns the existing) objective under name.
// target is the error budget: the tolerated bad fraction (e.g. 0.01
// for a 99% objective). Create objectives before Register.
func (m *Monitor) Objective(name string, target float64) *Objective {
	if target <= 0 {
		target = 0.001
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range m.objs {
		if o.name == name {
			return o
		}
	}
	o := &Objective{
		name:   name,
		target: target,
		m:      m,
		fast:   newWindow(m.cfg.FastWindowMS, m.cfg.Buckets),
		slow:   newWindow(m.cfg.SlowWindowMS, m.cfg.Buckets),
	}
	m.objs = append(m.objs, o)
	return o
}

// Objectives returns the monitor's objectives in creation order.
func (m *Monitor) Objectives() []*Objective {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Objective(nil), m.objs...)
}

// Register exports every objective's burn rates and alert state as
// scrape-time gauges plus a page counter. Objectives created after
// Register are not exported.
func (m *Monitor) Register(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	for _, o := range m.Objectives() {
		o := o
		reg.GaugeFunc("cottage_slo_burn",
			"Error-budget burn rate per objective and window.",
			func() float64 { f, _ := o.Burn(); return f },
			obs.L("objective", o.name), obs.L("window", "fast"))
		reg.GaugeFunc("cottage_slo_burn",
			"Error-budget burn rate per objective and window.",
			func() float64 { _, s := o.Burn(); return s },
			obs.L("objective", o.name), obs.L("window", "slow"))
		reg.GaugeFunc("cottage_slo_alert",
			"Alert state per objective (0=ok, 1=warn, 2=page).",
			func() float64 { return float64(o.State()) },
			obs.L("objective", o.name))
		reg.Register("cottage_slo_pages_total",
			"Transitions into the page state, per objective.",
			&o.pages, obs.L("objective", o.name))
	}
}

// window is a bucketed sliding counter of good/bad events.
type window struct {
	bucketMS float64
	buckets  []bucket
	cur      int64 // absolute bucket index currently mapped to cur%len
	started  bool
}

type bucket struct{ good, bad uint64 }

func newWindow(widthMS float64, n int) window {
	return window{bucketMS: widthMS / float64(n), buckets: make([]bucket, n)}
}

// rotate advances the window to nowMS, zeroing buckets that fell out.
func (w *window) rotate(nowMS float64) {
	idx := int64(nowMS / w.bucketMS)
	if !w.started {
		w.started = true
		w.cur = idx
		return
	}
	if idx <= w.cur {
		return // same bucket, or a clock that stood still
	}
	steps := idx - w.cur
	if steps > int64(len(w.buckets)) {
		steps = int64(len(w.buckets))
	}
	for i := int64(1); i <= steps; i++ {
		w.buckets[(w.cur+i)%int64(len(w.buckets))] = bucket{}
	}
	w.cur = idx
}

func (w *window) add(nowMS float64, good bool) {
	w.rotate(nowMS)
	b := &w.buckets[w.cur%int64(len(w.buckets))]
	if good {
		b.good++
	} else {
		b.bad++
	}
}

// badFrac returns the window's bad fraction and total event count.
func (w *window) badFrac(nowMS float64) (float64, uint64) {
	w.rotate(nowMS)
	var good, bad uint64
	for _, b := range w.buckets {
		good += b.good
		bad += b.bad
	}
	total := good + bad
	if total == 0 {
		return 0, 0
	}
	return float64(bad) / float64(total), total
}

// Objective is one monitored SLO.
type Objective struct {
	name   string
	target float64
	m      *Monitor

	mu         sync.Mutex
	fast, slow window
	state      State
	warns      uint64

	pages obs.Counter // exported; transitions into page
}

// Name returns the objective's label.
func (o *Objective) Name() string { return o.name }

// Target returns the objective's error budget (tolerated bad fraction).
func (o *Objective) Target() float64 { return o.target }

// Observe records one event's outcome and re-evaluates the alert
// state. Nil-safe. The page callback, if any, fires outside the locks.
func (o *Objective) Observe(good bool) {
	if o == nil {
		return
	}
	now := o.m.cfg.NowMS()
	o.mu.Lock()
	o.fast.add(now, good)
	o.slow.add(now, good)
	fb, _ := o.fast.badFrac(now)
	sb, _ := o.slow.badFrac(now)
	fastBurn, slowBurn := fb/o.target, sb/o.target
	next := StateOK
	switch {
	case fastBurn >= o.m.cfg.PageBurn && slowBurn >= o.m.cfg.PageBurn:
		next = StatePage
	case fastBurn >= o.m.cfg.WarnBurn && slowBurn >= o.m.cfg.WarnBurn:
		next = StateWarn
	}
	paged := next == StatePage && o.state != StatePage
	if paged {
		o.pages.Inc()
	}
	if next == StateWarn && o.state == StateOK {
		o.warns++
	}
	o.state = next
	o.mu.Unlock()
	if paged {
		o.m.mu.Lock()
		fn := o.m.onPage
		o.m.mu.Unlock()
		if fn != nil {
			fn(o)
		}
	}
}

// Burn returns the current fast/slow burn rates.
func (o *Objective) Burn() (fast, slow float64) {
	if o == nil {
		return 0, 0
	}
	now := o.m.cfg.NowMS()
	o.mu.Lock()
	defer o.mu.Unlock()
	fb, _ := o.fast.badFrac(now)
	sb, _ := o.slow.badFrac(now)
	return fb / o.target, sb / o.target
}

// State returns the objective's current alert state.
func (o *Objective) State() State {
	if o == nil {
		return StateOK
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// Pages returns how many times the objective transitioned into page.
func (o *Objective) Pages() uint64 {
	if o == nil {
		return 0
	}
	return o.pages.Value()
}

// Snapshot is an objective's point-in-time JSON view.
type Snapshot struct {
	Name     string  `json:"name"`
	Target   float64 `json:"target"`
	State    string  `json:"state"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Pages    uint64  `json:"pages"`
}

// Snapshot captures the objective's current state.
func (o *Objective) Snapshot() Snapshot {
	f, s := o.Burn()
	return Snapshot{
		Name:     o.name,
		Target:   o.target,
		State:    o.State().String(),
		FastBurn: f,
		SlowBurn: s,
		Pages:    o.Pages(),
	}
}

// Handler serves every objective's snapshot as JSON — the /debug/slo
// endpoint.
func Handler(m *Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		objs := m.Objectives()
		snaps := make([]Snapshot, len(objs))
		for i, o := range objs {
			snaps[i] = o.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snaps)
	})
}

// QuerySLO bundles the per-query objectives a serving path feeds: the
// latency target, a quality objective (the P@10 proxy — a query
// degraded by failed or truncated shards spends quality budget), and a
// power-cap objective for the twin. All methods are nil-safe, so call
// sites need no SLO-enabled branching.
type QuerySLO struct {
	// LatencyMS is the per-query latency target backing Latency.
	LatencyMS float64
	// PowerCapW is the fleet power cap backing Power.
	PowerCapW float64

	Latency *Objective
	Quality *Objective
	Power   *Objective
}

// ObserveQuery feeds one completed query: its end-to-end latency and
// whether its result was degraded (failed, truncated or shed shards —
// the quality proxy).
func (q *QuerySLO) ObserveQuery(latencyMS float64, degraded bool) {
	if q == nil {
		return
	}
	if q.Latency != nil {
		q.Latency.Observe(latencyMS <= q.LatencyMS)
	}
	if q.Quality != nil {
		q.Quality.Observe(!degraded)
	}
}

// ObservePower feeds a fleet power sample against the cap.
func (q *QuerySLO) ObservePower(watts float64) {
	if q == nil || q.Power == nil {
		return
	}
	q.Power.Observe(watts <= q.PowerCapW)
}
