package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("Counter create-or-get returned a different instance")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestRegisterAdoptsExisting(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	got := r.Register("adopted_total", "adopted", &c).(*Counter)
	if got != &c {
		t.Fatal("Register did not adopt the provided collector")
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adopted_total 7") {
		t.Fatalf("scrape missing adopted counter:\n%s", out.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(0, 1, 100)) // 1..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) - 0.5) // 0.5, 1.5, ... 99.5
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	checks := []struct{ q, want, tol float64 }{
		{0.50, 50, 1.5},
		{0.95, 95, 1.5},
		{0.99, 99, 1.5},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("p%g = %g, want %g±%g", c.q*100, got, c.want, c.tol)
		}
	}
	if got := s.Mean(); math.Abs(got-50) > 0.5 {
		t.Errorf("mean = %g, want ~50", got)
	}
	if s.Min != 0.5 || s.Max != 99.5 {
		t.Errorf("min/max = %g/%g, want 0.5/99.5", s.Min, s.Max)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBucketsMS())
	s := h.Snapshot()
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty mean = %g, want 0", m)
	}
}

// TestHistogramConcurrent hammers one histogram from many writers while
// a reader snapshots quantiles — the race detector is the real assertion,
// plus the final totals must add up exactly.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.1, 2, 16))
	const writers = 8
	const perWriter = 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if q := s.Quantile(0.95); q < 0 {
				t.Errorf("negative quantile %g", q)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Float64() * 100)
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	bucketSum := uint64(0)
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if q95 := s.Quantile(0.95); q95 < 50 || q95 > 100 {
		t.Errorf("p95 = %g, want within (50, 100) for uniform [0,100)", q95)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cottage_requests_total", "Total requests.", L("kind", "search")).Add(3)
	r.GaugeFunc("cottage_inflight", "In-flight requests.", func() float64 { return 2 })
	h := r.Histogram("cottage_latency_ms", "Latency.", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(500)

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE cottage_requests_total counter",
		`cottage_requests_total{kind="search"} 3`,
		"# TYPE cottage_inflight gauge",
		"cottage_inflight 2",
		"# TYPE cottage_latency_ms histogram",
		`cottage_latency_ms_bucket{le="1"} 1`,
		`cottage_latency_ms_bucket{le="10"} 2`,
		`cottage_latency_ms_bucket{le="100"} 2`,
		`cottage_latency_ms_bucket{le="+Inf"} 3`,
		"cottage_latency_ms_sum 505.5",
		"cottage_latency_ms_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	// Cumulative bucket counts must be monotone and families contiguous.
	if strings.Count(text, "# TYPE cottage_latency_ms histogram") != 1 {
		t.Error("histogram family emitted more than once")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "", L("q", `a"b\c`)).Inc()
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `weird{q="a\"b\\c"} 1`) {
		t.Fatalf("bad label escaping:\n%s", out.String())
	}
}
