package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Endpoint is an extra route mounted on the debug mux — how packages
// that depend on obs (anatomy, slo) expose their handlers without obs
// importing them back.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// NewDebugMux builds the debug HTTP surface for an Observer:
//
//	/metrics        Prometheus text exposition
//	/healthz        liveness ("ok")
//	/debug/traces   recent span trees as JSON (?n= limit, ?format=jsonl)
//	/debug/flight   flight-recorder holdings (?format=jsonl)
//	/debug/pprof/*  net/http/pprof
//
// plus any extra endpoints (e.g. /debug/anatomy via anatomy.Handler,
// /debug/slo via slo.Handler).
func NewDebugMux(o *Observer, extras ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil && o.Reg != nil {
			_ = o.Reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		var rec *Recorder
		if o != nil {
			rec = o.Traces
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = rec.WriteJSONL(w)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		traces := rec.Recent(n)
		if traces == nil {
			traces = []*Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.HandleFunc("/debug/accuracy", func(w http.ResponseWriter, r *http.Request) {
		var snap []ISNAccuracy
		if o != nil {
			snap = o.Acc.Snapshot()
		}
		if snap == nil {
			snap = []ISNAccuracy{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		var fr *FlightRecorder
		if o != nil {
			fr = o.Flight
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_, _ = fr.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fr.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extras {
		if e.Path != "" && e.Handler != nil {
			mux.Handle(e.Path, e.Handler)
		}
	}
	return mux
}

// Debug is a running debug listener.
type Debug struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug serves the debug mux on addr (e.g. "127.0.0.1:8080"; pass
// ":0" for an ephemeral port) in a background goroutine. Go runtime
// health gauges (goroutines, heap, GC pauses) are registered on the
// observer's registry as a side effect — any process with a debug
// listener reports its own health.
func StartDebug(addr string, o *Observer, extras ...Endpoint) (*Debug, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if o != nil {
		RegisterRuntimeMetrics(o.Reg)
	}
	d := &Debug{ln: ln, srv: &http.Server{Handler: NewDebugMux(o, extras...)}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the listener's bound address.
func (d *Debug) Addr() string { return d.ln.Addr().String() }

// Close stops the listener.
func (d *Debug) Close() error { return d.srv.Close() }
