// Package predict implements Cottage's two distributed predictors
// (Section III-B/C of the paper) and the Gamma-distribution quality
// estimator used by the Taily baseline and the Cottage-withoutML
// ablation.
//
// Each ISN owns three neural networks, all trained on ground truth
// harvested by replaying training queries exhaustively on that ISN's own
// index:
//
//   - quality-K: how many of this ISN's documents end up in the *global*
//     top-K (classes 0..K) — Table I features;
//   - quality-K/2: the same for the global top-K/2 (classes 0..K/2);
//   - latency: the query's service cost in cycles at the default
//     frequency, binned into log-spaced classes — Table II features.
//
// The latency predictor returns cycles rather than milliseconds so the
// paper's Eq. 1 frequency scaling and Eq. 2 queueing adjustment apply
// cleanly on top.
package predict

import (
	"fmt"
	"math"

	"cottage/internal/cluster"
	"cottage/internal/features"
	"cottage/internal/index"
	"cottage/internal/nn"
	"cottage/internal/par"
	"cottage/internal/search"
	"cottage/internal/trace"
)

// Sample is one (query, ISN) training observation.
type Sample struct {
	QualityVec [features.QualityDim]float64
	LatencyVec [features.LatencyDim]float64
	Matched    bool
	QK         int     // documents contributed to the global top-K
	QK2        int     // documents contributed to the global top-K/2
	Cycles     float64 // measured service cost at the reference strategy
}

// Dataset holds harvested samples, PerISN[isn][query].
type Dataset struct {
	K      int
	PerISN [][]Sample
}

// Harvest replays queries exhaustively against every shard, merges the
// global top-K/top-K/2, and records per-ISN quality labels, latency
// labels (via the cost model), and feature vectors. strat selects the ISN
// evaluation strategy whose work is being predicted (the engine uses
// MaxScore, like a production engine).
func Harvest(shards []*index.Shard, queries []trace.Query, k int,
	strat search.Strategy, cost cluster.CostModel) *Dataset {

	ds := &Dataset{K: k, PerISN: make([][]Sample, len(shards))}
	for i := range ds.PerISN {
		ds.PerISN[i] = make([]Sample, len(queries))
	}
	harvestOne := func(qi int) {
		q := queries[qi]
		perShard := make([]search.Result, len(shards))
		for si, s := range shards {
			perShard[si] = search.Eval(strat, s, q.Terms, k)
		}
		lists := make([][]search.Hit, len(shards))
		for si := range perShard {
			lists[si] = perShard[si].Hits
		}
		inK := search.DocSet(search.Merge(k, lists...))
		inK2 := search.DocSet(search.Merge(k/2, lists...))
		for si, s := range shards {
			qv, lv, qok := features.Extract(s, q.Terms)
			ds.PerISN[si][qi] = Sample{
				QualityVec: qv,
				LatencyVec: lv,
				Matched:    qok,
				QK:         search.Overlap(perShard[si].Hits, inK),
				QK2:        search.Overlap(perShard[si].Hits, inK2),
				Cycles:     cost.Cycles(perShard[si].Stats),
			}
		}
	}
	// Queries are independent and every write is index-addressed, so the
	// harvest parallelizes across CPUs deterministically.
	par.For(len(queries), harvestOne)
	return ds
}

// Bins maps continuous cycle counts onto log-spaced classes. The paper's
// latency predictor "has more neurons on the output layer due to the
// higher variability of a query's service time"; log-spaced bins give
// constant relative resolution across the 4–65 ms range.
type Bins struct {
	LogLo, LogHi float64
	N            int
}

// FitBins spans the observed (positive) cycle range with n bins.
func FitBins(cycles []float64, n int) Bins {
	if n <= 1 {
		panic("predict: need at least 2 bins")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cycles {
		if c <= 0 {
			continue
		}
		l := math.Log(c)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if math.IsInf(lo, 1) {
		// Degenerate: no positive samples; any bin layout works.
		lo, hi = 0, 1
	}
	if hi-lo < 1e-9 {
		hi = lo + 1e-9
	}
	return Bins{LogLo: lo, LogHi: hi, N: n}
}

// Class returns the bin index for a cycle count, clamped to [0, N).
func (b Bins) Class(cycles float64) int {
	if cycles <= 0 {
		return 0
	}
	f := (math.Log(cycles) - b.LogLo) / (b.LogHi - b.LogLo)
	i := int(f * float64(b.N))
	if i < 0 {
		i = 0
	}
	if i >= b.N {
		i = b.N - 1
	}
	return i
}

// Value returns the representative cycle count of a bin (geometric
// midpoint).
func (b Bins) Value(class int) float64 {
	if class < 0 {
		class = 0
	}
	if class >= b.N {
		class = b.N - 1
	}
	w := (b.LogHi - b.LogLo) / float64(b.N)
	return math.Exp(b.LogLo + (float64(class)+0.5)*w)
}

// Config controls predictor training.
type Config struct {
	// K is the top-K the quality models predict contributions to.
	K int
	// LatencyBins is the latency model's output arity.
	LatencyBins int
	// QualitySteps and LatencySteps are Adam gradient steps (the paper's
	// "training iterations": ~600 for quality, ~60 for latency — see
	// Figs. 7a/8a; the defaults give both models their convergence
	// budget).
	QualitySteps int
	LatencySteps int
	// Net selects the architecture (nn.FastConfig or nn.PaperConfig).
	Net func(inputDim, numClasses int, seed uint64) nn.Config
	// Seed drives weight init and batch sampling.
	Seed uint64
}

// DefaultConfig returns the harness configuration: fast architecture,
// paper-scale training budgets.
func DefaultConfig(k int) Config {
	return Config{
		K:            k,
		LatencyBins:  20,
		QualitySteps: 600,
		LatencySteps: 240,
		Net:          nn.FastConfig,
		Seed:         1,
	}
}

// ISNPredictor bundles one ISN's trained models.
type ISNPredictor struct {
	ISN     int
	K       int
	QKNet   *nn.Network
	QK2Net  *nn.Network
	LatNet  *nn.Network
	LatBins Bins

	qkPred, qk2Pred, latPred *nn.Predictor
}

// Prediction is the tuple an ISN reports to the aggregator in step 3 of
// the coordination protocol: <Q^K, Q^{K/2}, predicted service cycles>.
// Alongside the argmax class predictions it carries the classifiers'
// zero-class probabilities and expected contributions, so the aggregator
// can make calibrated cutoff decisions (dropping a shard only when the
// model is confident its contribution is zero) instead of trusting a hard
// argmax — standard practice for softmax classifiers, and the lever that
// keeps P@10 near the paper's 0.947 under our predictors' accuracy.
type Prediction struct {
	Matched bool
	QK      int
	QK2     int
	Cycles  float64
	// PZeroK is the model's probability that this ISN contributes zero
	// documents to the top-K; PZeroK2 likewise for the top-K/2.
	PZeroK  float64
	PZeroK2 float64
	// ExpQK is the probability-weighted expected contribution, a smoother
	// ranking key than the argmax.
	ExpQK float64
}

// Predict runs both predictors for one query on this ISN's shard. Both
// feature vectors come from one pass over the term dictionary
// (features.Extract), and the latency class decode skips the softmax.
func (p *ISNPredictor) Predict(s *index.Shard, terms []string) Prediction {
	qv, lv, ok := features.Extract(s, terms)
	if !ok {
		// No query term exists on this shard: zero contribution, and the
		// only work is the dictionary miss.
		return Prediction{Matched: false, PZeroK: 1, PZeroK2: 1}
	}
	qkProbs := p.qkPred.Probs(qv[:])
	pr := Prediction{
		Matched: true,
		QK:      argmax(qkProbs),
		PZeroK:  qkProbs[0],
		Cycles:  p.LatBins.Value(p.latPred.Classify(lv[:])),
	}
	for c, pc := range qkProbs {
		pr.ExpQK += float64(c) * pc
	}
	qk2Probs := p.qk2Pred.Probs(qv[:])
	pr.QK2 = argmax(qk2Probs)
	pr.PZeroK2 = qk2Probs[0]
	return pr
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Fleet is the set of per-ISN predictors for a whole cluster.
type Fleet struct {
	K          int
	Predictors []*ISNPredictor
}

// PredictAll runs every ISN's predictors for a query, fanned out across
// CPUs — in production each ISN predicts on its own node concurrently,
// and here every ISN owns its predictor scratch while out is
// index-addressed, so the fan-out is race-free and deterministic. Two
// concurrent PredictAll calls on the same Fleet are not allowed (the
// per-ISN inference scratch is single-threaded), matching the aggregator,
// which issues one prediction round at a time per fleet.
func (f *Fleet) PredictAll(shards []*index.Shard, terms []string) []Prediction {
	out := make([]Prediction, len(shards))
	par.For(len(shards), func(i int) {
		out[i] = f.Predictors[i].Predict(shards[i], terms)
	})
	return out
}

// Train fits per-ISN models from a harvested dataset. Returns an error if
// the dataset is empty or misconfigured.
func Train(ds *Dataset, cfg Config) (*Fleet, error) {
	if len(ds.PerISN) == 0 {
		return nil, fmt.Errorf("predict: empty dataset")
	}
	if cfg.K <= 1 {
		return nil, fmt.Errorf("predict: K must be > 1, got %d", cfg.K)
	}
	if cfg.Net == nil {
		cfg.Net = nn.FastConfig
	}
	if cfg.LatencyBins <= 1 {
		cfg.LatencyBins = 20
	}
	// Every ISN's three models train independently (the paper trains one
	// model set per ISN on its own index); parallelize across CPUs with
	// index-addressed results so the trained fleet is identical at any
	// worker count.
	fleet := &Fleet{K: cfg.K, Predictors: make([]*ISNPredictor, len(ds.PerISN))}
	errs := make([]error, len(ds.PerISN))
	par.For(len(ds.PerISN), func(isn int) {
		p, err := trainISN(isn, ds.PerISN[isn], cfg)
		if err != nil {
			errs[isn] = fmt.Errorf("predict: ISN %d: %w", isn, err)
			return
		}
		fleet.Predictors[isn] = p
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

func trainISN(isn int, samples []Sample, cfg Config) (*ISNPredictor, error) {
	matched := 0
	for _, sm := range samples {
		if sm.Matched {
			matched++
		}
	}
	// Two flat backing arrays instead of one small slice per sample; the
	// row views into them are what nn.Train sees.
	var (
		qflat = make([]float64, 0, matched*features.QualityDim)
		lflat = make([]float64, 0, matched*features.LatencyDim)
		qx    = make([][]float64, 0, matched)
		qkY   = make([]int, 0, matched)
		qk2Y  = make([]int, 0, matched)
		lx    = make([][]float64, 0, matched)
		latC  = make([]float64, 0, matched)
	)
	for _, sm := range samples {
		if !sm.Matched {
			continue // unmatched shards are known zeros; no model needed
		}
		qflat = append(qflat, sm.QualityVec[:]...)
		qx = append(qx, qflat[len(qflat)-features.QualityDim:len(qflat):len(qflat)])
		qkY = append(qkY, clampClass(sm.QK, cfg.K))
		qk2Y = append(qk2Y, clampClass(sm.QK2, cfg.K/2))
		lflat = append(lflat, sm.LatencyVec[:]...)
		lx = append(lx, lflat[len(lflat)-features.LatencyDim:len(lflat):len(lflat)])
		latC = append(latC, sm.Cycles)
	}
	if len(qx) < 10 {
		return nil, fmt.Errorf("only %d matched training samples", len(qx))
	}
	bins := FitBins(latC, cfg.LatencyBins)
	latY := make([]int, len(latC))
	for i, c := range latC {
		latY[i] = bins.Class(c)
	}

	seed := cfg.Seed + uint64(isn)*1000
	qkNet := nn.New(cfg.Net(features.QualityDim, cfg.K+1, seed))
	qk2Net := nn.New(cfg.Net(features.QualityDim, cfg.K/2+1, seed+1))
	latNet := nn.New(cfg.Net(features.LatencyDim, bins.N, seed+2))

	qtc := nn.DefaultTrainConfig(cfg.QualitySteps)
	qtc.Seed = seed + 3
	if _, err := qkNet.Train(qx, qkY, qtc); err != nil {
		return nil, err
	}
	qtc.Seed = seed + 4
	if _, err := qk2Net.Train(qx, qk2Y, qtc); err != nil {
		return nil, err
	}
	ltc := nn.DefaultTrainConfig(cfg.LatencySteps)
	ltc.Seed = seed + 5
	if _, err := latNet.Train(lx, latY, ltc); err != nil {
		return nil, err
	}

	return &ISNPredictor{
		ISN:     isn,
		K:       cfg.K,
		QKNet:   qkNet,
		QK2Net:  qk2Net,
		LatNet:  latNet,
		LatBins: bins,
		qkPred:  qkNet.NewPredictor(),
		qk2Pred: qk2Net.NewPredictor(),
		latPred: latNet.NewPredictor(),
	}, nil
}

func clampClass(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// Accuracy summarizes a fleet's prediction quality on a (held-out)
// dataset, the numbers Figs. 7b/8b report per ISN.
type Accuracy struct {
	ISN            int
	QualityExact   float64 // exact-class accuracy of the quality-K model
	QualityWithin1 float64 // within one document of the true count
	// QualityZero is the binary zero/non-zero agreement — the decision
	// Algorithm 1's first stage actually consumes.
	QualityZero    float64
	LatencyWithin1 float64 // within one log bin — the paper's "accurate"
	LatencyExact   float64
	Samples        int
}

// Evaluate measures per-ISN accuracy of fleet on ds (use a held-out
// split).
func Evaluate(fleet *Fleet, ds *Dataset) []Accuracy {
	out := make([]Accuracy, len(fleet.Predictors))
	par.For(len(fleet.Predictors), func(isn int) {
		p := fleet.Predictors[isn]
		var qx, lx [][]float64
		var qy, ly []int
		for _, sm := range ds.PerISN[isn] {
			if !sm.Matched {
				continue
			}
			qx = append(qx, append([]float64(nil), sm.QualityVec[:]...))
			qy = append(qy, clampClass(sm.QK, fleet.K))
			lx = append(lx, append([]float64(nil), sm.LatencyVec[:]...))
			ly = append(ly, p.LatBins.Class(sm.Cycles))
		}
		a := Accuracy{ISN: isn, Samples: len(qx)}
		if len(qx) > 0 {
			a.QualityExact = p.QKNet.Accuracy(qx, qy)
			a.QualityWithin1 = p.QKNet.AccuracyWithin(qx, qy, 1)
			a.LatencyExact = p.LatNet.Accuracy(lx, ly)
			a.LatencyWithin1 = p.LatNet.AccuracyWithin(lx, ly, 1)
			zeroOK := 0
			for i := range qx {
				got := p.qkPred.Classify(qx[i])
				if (got == 0) == (qy[i] == 0) {
					zeroOK++
				}
			}
			a.QualityZero = float64(zeroOK) / float64(len(qx))
		}
		out[isn] = a
	})
	return out
}
