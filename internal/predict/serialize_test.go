package predict

import (
	"bytes"
	"testing"

	"cottage/internal/cluster"
	"cottage/internal/search"
)

func TestISNPredictorRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a predictor")
	}
	f := getFixture(t)
	ds := Harvest(f.shards[:1], f.train[:200], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	cfg := DefaultConfig(10)
	cfg.QualitySteps = 80
	cfg.LatencySteps = 60
	fleet, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := fleet.Predictors[0]

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeISNPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ISN != p.ISN || got.K != p.K || got.LatBins != p.LatBins {
		t.Fatal("metadata lost in round trip")
	}
	// Predictions must be identical after the round trip.
	for _, q := range f.test[:50] {
		a := p.Predict(f.shards[0], q.Terms)
		b := got.Predict(f.shards[0], q.Terms)
		if a != b {
			t.Fatalf("prediction differs after round trip: %+v vs %+v", a, b)
		}
	}
}

func TestDecodeISNPredictorGarbage(t *testing.T) {
	if _, err := DecodeISNPredictor(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}
