package predict

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"cottage/internal/cluster"
	"cottage/internal/index"
	"cottage/internal/nn"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// fixture bundles a small corpus, shards and traces shared by the tests.
type fixture struct {
	corpus *textgen.Corpus
	shards []*index.Shard
	train  []trace.Query
	test   []trace.Query
}

var cached *fixture

func getFixture(tb testing.TB) *fixture {
	tb.Helper()
	if cached != nil {
		return cached
	}
	cfg := textgen.DefaultConfig()
	cfg.NumDocs = 6000
	cfg.VocabSize = 6000
	cfg.NumTopics = 24
	cfg.TopicTermCount = 150
	corpus := textgen.Generate(cfg)
	alloc := corpus.AllocateTopical(8, 2, 0.15, 7)
	shards := make([]*index.Shard, len(alloc))
	for si, docIDs := range alloc {
		b := index.NewBuilder(si, index.DefaultBM25(), 10)
		for _, id := range docIDs {
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	}
	qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 11, NumQueries: 700, QPS: 10})
	train, test := trace.TrainTestSplit(qs, 0.8)
	cached = &fixture{corpus: corpus, shards: shards, train: train, test: test}
	return cached
}

func TestHarvestLabels(t *testing.T) {
	f := getFixture(t)
	ds := Harvest(f.shards, f.train[:60], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	if len(ds.PerISN) != len(f.shards) {
		t.Fatalf("PerISN size %d", len(ds.PerISN))
	}
	for qi := 0; qi < 60; qi++ {
		sumK, sumK2 := 0, 0
		for si := range f.shards {
			sm := ds.PerISN[si][qi]
			if sm.QK < 0 || sm.QK > 10 || sm.QK2 < 0 || sm.QK2 > 5 {
				t.Fatalf("label out of range: %+v", sm)
			}
			if sm.QK2 > sm.QK {
				t.Fatalf("QK2 %d > QK %d (top-5 docs are a subset of top-10)", sm.QK2, sm.QK)
			}
			if sm.Matched && sm.Cycles <= 0 {
				t.Fatalf("matched sample with non-positive cycles")
			}
			if !sm.Matched && sm.QK != 0 {
				t.Fatalf("unmatched shard contributed documents")
			}
			sumK += sm.QK
			sumK2 += sm.QK2
		}
		// Global top-10/top-5 contributions must total 10/5 when enough
		// documents match (they almost always do on this corpus).
		if sumK > 10 || sumK2 > 5 {
			t.Fatalf("query %d: contributions exceed K: %d/%d", qi, sumK, sumK2)
		}
	}
}

func TestHarvestQualitySkew(t *testing.T) {
	f := getFixture(t)
	ds := Harvest(f.shards, f.train[:100], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	// Topical allocation should leave some (query, shard) pairs with zero
	// contribution — Fig. 2b's premise.
	zeros, nonzeros := 0, 0
	for si := range ds.PerISN {
		for qi := 0; qi < 100; qi++ {
			if ds.PerISN[si][qi].QK == 0 {
				zeros++
			} else {
				nonzeros++
			}
		}
	}
	if zeros == 0 || nonzeros == 0 {
		t.Fatalf("no quality skew: %d zeros, %d nonzeros", zeros, nonzeros)
	}
	if float64(zeros)/float64(zeros+nonzeros) < 0.2 {
		t.Errorf("too little skew for the experiments: %d/%d zeros", zeros, zeros+nonzeros)
	}
}

func TestBins(t *testing.T) {
	b := FitBins([]float64{100, 1000, 10000}, 10)
	if b.Class(50) != 0 {
		t.Error("below-range should clamp to 0")
	}
	if b.Class(1e6) != 9 {
		t.Error("above-range should clamp to N-1")
	}
	if b.Class(0) != 0 || b.Class(-5) != 0 {
		t.Error("non-positive cycles map to class 0")
	}
	// Class is monotone in cycles.
	prev := 0
	for c := 100.0; c <= 10000; c *= 1.3 {
		cl := b.Class(c)
		if cl < prev {
			t.Fatalf("Class not monotone at %v", c)
		}
		prev = cl
	}
	// Value is the inverse-ish mapping: Class(Value(i)) == i.
	for i := 0; i < 10; i++ {
		if got := b.Class(b.Value(i)); got != i {
			t.Errorf("Class(Value(%d)) = %d", i, got)
		}
	}
	// Clamped Value.
	if b.Value(-1) != b.Value(0) || b.Value(99) != b.Value(9) {
		t.Error("Value should clamp")
	}
}

func TestBinsDegenerate(t *testing.T) {
	b := FitBins(nil, 5)
	if b.Class(123) < 0 || b.Class(123) >= 5 {
		t.Error("degenerate bins should still classify")
	}
	b2 := FitBins([]float64{500, 500, 500}, 5)
	if c := b2.Class(500); c < 0 || c >= 5 {
		t.Error("constant bins should still classify")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n<=1 should panic")
			}
		}()
		FitBins([]float64{1}, 1)
	}()
}

func trainedFleet(tb testing.TB, f *fixture) (*Fleet, *Dataset, *Dataset) {
	tb.Helper()
	cost := cluster.DefaultCostModel()
	trainDS := Harvest(f.shards, f.train, 10, search.StrategyMaxScore, cost)
	testDS := Harvest(f.shards, f.test, 10, search.StrategyMaxScore, cost)
	cfg := DefaultConfig(10)
	cfg.QualitySteps = 300
	cfg.LatencySteps = 150
	fleet, err := Train(trainDS, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return fleet, trainDS, testDS
}

func TestTrainAndEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("training is expensive")
	}
	f := getFixture(t)
	fleet, _, testDS := trainedFleet(t, f)
	if len(fleet.Predictors) != len(f.shards) {
		t.Fatalf("fleet size %d", len(fleet.Predictors))
	}
	accs := Evaluate(fleet, testDS)
	meanQ1, meanQZ, meanL := 0.0, 0.0, 0.0
	for _, a := range accs {
		if a.Samples == 0 {
			t.Fatalf("ISN %d evaluated on zero samples", a.ISN)
		}
		meanQ1 += a.QualityWithin1
		meanQZ += a.QualityZero
		meanL += a.LatencyWithin1
		if a.QualityWithin1 < a.QualityExact {
			t.Fatalf("within-1 below exact on ISN %d", a.ISN)
		}
	}
	n := float64(len(accs))
	meanQ1 /= n
	meanQZ /= n
	meanL /= n
	// The paper reports ~95% quality and ~87% latency accuracy on its
	// Wikipedia testbed; these held-out floors are the regime the engine
	// experiments need (zero-detection drives ISN cutoff, within-1 drives
	// budget quality).
	if meanQ1 < 0.72 {
		t.Errorf("mean quality within-1 accuracy %.3f too low", meanQ1)
	}
	if meanQZ < 0.70 {
		t.Errorf("mean quality zero-detection %.3f too low", meanQZ)
	}
	if meanL < 0.65 {
		t.Errorf("mean latency within-1 accuracy %.3f too low", meanL)
	}
	t.Logf("held-out: quality within1=%.3f zero=%.3f latency within1=%.3f", meanQ1, meanQZ, meanL)
}

func TestPredictionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training is expensive")
	}
	f := getFixture(t)
	fleet, _, _ := trainedFleet(t, f)
	for _, q := range f.test[:30] {
		preds := fleet.PredictAll(f.shards, q.Terms)
		for si, p := range preds {
			if !p.Matched {
				if p.QK != 0 || p.Cycles != 0 {
					t.Fatalf("unmatched prediction should be zero: %+v", p)
				}
				continue
			}
			if p.QK < 0 || p.QK > 10 || p.QK2 < 0 || p.QK2 > 5 {
				t.Fatalf("ISN %d prediction out of range: %+v", si, p)
			}
			if p.Cycles <= 0 || math.IsNaN(p.Cycles) {
				t.Fatalf("ISN %d bad cycle prediction: %v", si, p.Cycles)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&Dataset{}, DefaultConfig(10)); err == nil {
		t.Error("empty dataset should fail")
	}
	ds := &Dataset{K: 10, PerISN: [][]Sample{{{Matched: true}}}}
	if _, err := Train(ds, DefaultConfig(1)); err == nil {
		t.Error("K=1 should fail")
	}
	if _, err := Train(ds, DefaultConfig(10)); err == nil {
		t.Error("too few samples should fail")
	}
}

func TestClampClass(t *testing.T) {
	if clampClass(-1, 10) != 0 || clampClass(11, 10) != 10 || clampClass(5, 10) != 5 {
		t.Error("clampClass wrong")
	}
}

func TestGammaEstimator(t *testing.T) {
	f := getFixture(t)
	g := &GammaEstimator{Shards: f.shards, Mode: ModeUnion}
	cost := cluster.DefaultCostModel()
	ds := Harvest(f.shards, f.test[:50], 10, search.StrategyMaxScore, cost)
	// The estimator should be correlated with the truth: shards with
	// positive estimates should cover most of the actual contributions.
	covered, total := 0, 0
	for qi, q := range f.test[:50] {
		est := g.Estimate(q.Terms, 10)
		sum := 0.0
		for si, e := range est {
			if e < 0 {
				t.Fatalf("negative estimate for shard %d", si)
			}
			sum += e
			truth := ds.PerISN[si][qi].QK
			total += truth
			if e > 0.25 {
				covered += truth
			}
		}
		if sum > 40 {
			t.Errorf("query %d: estimates sum to %v, far above K=10", qi, sum)
		}
	}
	if total == 0 {
		t.Fatal("no ground-truth contributions in sample")
	}
	if frac := float64(covered) / float64(total); frac < 0.7 {
		t.Errorf("gamma estimator covers only %.2f of true contributions", frac)
	}
}

func TestGammaEstimatorNoMatch(t *testing.T) {
	f := getFixture(t)
	g := &GammaEstimator{Shards: f.shards}
	est := g.Estimate([]string{"zzzznotaword"}, 10)
	for _, e := range est {
		if e != 0 {
			t.Fatal("absent term should estimate zero everywhere")
		}
	}
	counts := g.EstimateCounts([]string{"zzzznotaword"}, 10)
	for _, c := range counts {
		if c != 0 {
			t.Fatal("counts should be zero")
		}
	}
}

func TestEstimateCountsClamped(t *testing.T) {
	f := getFixture(t)
	g := &GammaEstimator{Shards: f.shards}
	for _, q := range f.test[:20] {
		for _, c := range g.EstimateCounts(q.Terms, 10) {
			if c < 0 || c > 10 {
				t.Fatalf("count %d out of [0,10]", c)
			}
		}
	}
}

func TestFastVsPaperNetConfig(t *testing.T) {
	fast := nn.FastConfig(10, 11, 1)
	paper := nn.PaperConfig(10, 11, 1)
	if len(paper.Hidden) != 5 || paper.Hidden[0] != 128 {
		t.Error("paper config should be 5x128")
	}
	if nn.New(fast).NumParams() >= nn.New(paper).NumParams() {
		t.Error("fast config should be smaller")
	}
}

func BenchmarkHarvestQuery(b *testing.B) {
	f := getFixture(b)
	cost := cluster.DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Harvest(f.shards, f.train[:1], 10, search.StrategyMaxScore, cost)
	}
}

func BenchmarkGammaEstimate(b *testing.B) {
	f := getFixture(b)
	g := &GammaEstimator{Shards: f.shards}
	q := f.test[0].Terms
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Estimate(q, 10)
	}
}

func TestISNPredictorPredictZeroAllocSteadyState(t *testing.T) {
	// The per-query serving path — feature extraction plus three softmax
	// inferences — must not allocate once the inference scratch pools are
	// warm.
	f := getFixture(t)
	ds := Harvest(f.shards[:1], f.train[:80], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	cfg := DefaultConfig(10)
	cfg.QualitySteps = 5
	cfg.LatencySteps = 5
	fleet, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := fleet.Predictors[0]
	terms := f.test[0].Terms
	_ = p.Predict(f.shards[0], terms) // warm the scratch pools
	if allocs := testing.AllocsPerRun(100, func() { _ = p.Predict(f.shards[0], terms) }); allocs != 0 {
		t.Errorf("ISNPredictor.Predict allocates %v per run, want 0", allocs)
	}
}

func TestPipelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Harvest, Train, PredictAll and Evaluate all fan out through par.For;
	// index-addressed writes mean the worker count must never change a bit
	// of any result. Replaying at 1 and 8 procs must agree exactly.
	f := getFixture(t)
	type snapshot struct {
		ds    *Dataset
		w     [][]float64
		preds [][]Prediction
		accs  []Accuracy
	}
	run := func(procs int) snapshot {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		ds := Harvest(f.shards, f.train[:60], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
		cfg := DefaultConfig(10)
		cfg.QualitySteps = 5
		cfg.LatencySteps = 5
		fleet, err := Train(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var w [][]float64
		for _, p := range fleet.Predictors {
			for _, net := range []*nn.Network{p.QKNet, p.QK2Net, p.LatNet} {
				for _, l := range net.Layers {
					w = append(w, l.W, l.B)
				}
			}
		}
		var preds [][]Prediction
		for _, q := range f.test[:10] {
			preds = append(preds, fleet.PredictAll(f.shards, q.Terms))
		}
		return snapshot{ds: ds, w: w, preds: preds, accs: Evaluate(fleet, ds)}
	}
	one := run(1)
	many := run(8)
	if !reflect.DeepEqual(one.ds, many.ds) {
		t.Error("Harvest differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(one.w, many.w) {
		t.Error("trained weights differ across GOMAXPROCS")
	}
	if !reflect.DeepEqual(one.preds, many.preds) {
		t.Error("PredictAll differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(one.accs, many.accs) {
		t.Error("Evaluate differs across GOMAXPROCS")
	}
}
