package predict

import (
	"math"

	"cottage/internal/index"
	"cottage/internal/stats"
)

// GammaEstimator is the Taily-style quality estimator (Aly et al.,
// SIGIR'13): each term's score distribution on each shard is modelled as a
// Gamma fitted from the index-time running moments, and a query's
// per-shard contribution to the global top-K is estimated as the expected
// number of documents scoring above a collection-wide threshold. It needs
// no central sample index and no training — but Fig. 6 of the Cottage
// paper shows why the Gamma fit misestimates tails, which is exactly the
// weakness the Cottage-withoutML ablation quantifies.
//
// Two modes are provided:
//
//   - ModeTaily follows Aly et al.: a query's score on a shard is
//     modelled as ONE Gamma whose mean/variance are the sums of the
//     per-term moments (the "all terms present" assumption), over the
//     documents matching the most frequent term. For multi-term queries
//     whose terms rarely co-occur this misestimates tails and distorts
//     the cross-shard ranking — the Fig. 6 failure mode the paper
//     attributes to Taily, and the error source behind Taily's 0.887
//     P@10 and the Cottage-withoutML ablation's quality loss.
//   - ModeUnion is our improved variant for disjunctive retrieval: each
//     term keeps its own Gamma and the count above a threshold is the
//     union bound Σ_t df_t · P_t(X > s). It stays index-time / per-shard
//     computable; the ablation benchmarks quantify the difference.
type GammaEstimator struct {
	Shards []*index.Shard
	Mode   GammaMode
}

// GammaMode selects the estimator variant.
type GammaMode int

const (
	// ModeTaily is the published Taily model (sum-of-moments, all-terms).
	ModeTaily GammaMode = iota
	// ModeUnion is the per-term union-bound variant.
	ModeUnion
)

// termModel is the fitted Gamma plus document count for one (term, shard).
type termModel struct {
	dist stats.GammaDist
	df   float64
	ok   bool
	max  float64
}

func fitTerm(s *index.Shard, text string) termModel {
	ti, found := s.Lookup(text)
	if !found {
		return termModel{}
	}
	st := ti.Stats
	mean := st.Mean
	variance := st.SumScore2/float64(st.PostingLen) - mean*mean
	d, err := stats.FitGammaMoments(mean, variance)
	if err != nil {
		// Degenerate (e.g. constant scores): treat as a point mass at the
		// mean by using a very peaked Gamma.
		d = stats.GammaDist{Shape: 1e6, Scale: mean / 1e6}
	}
	return termModel{dist: d, df: float64(st.PostingLen), ok: true, max: st.MaxScore}
}

// expectedAboveUnion estimates how many documents on shard s score above
// threshold for the query (union bound over terms).
func expectedAboveUnion(models []termModel, threshold float64) float64 {
	total := 0.0
	for _, m := range models {
		if !m.ok {
			continue
		}
		total += m.df * m.dist.TailProb(threshold)
	}
	return total
}

// expectedAboveTaily estimates the count with Taily's model: one Gamma
// whose moments are the sums of the per-term moments (the "all terms
// present" score assumption), applied over the documents matching the
// query's most frequent term. For single-term queries this is exact up to
// the Gamma fit; for multi-term queries the summed moments inflate the
// modelled score of partially-matching documents, distorting the
// cross-shard ranking so the global threshold cuts some true contributors
// while retaining over-claimed shards — the "improperly cutoff some ISNs
// that would significantly contribute" failure the paper attributes to
// distribution-based prediction (Section III-B, Fig. 6).
func expectedAboveTaily(models []termModel, numDocs int, threshold float64) float64 {
	mean, variance := 0.0, 0.0
	df := 0.0
	any := false
	for _, m := range models {
		if !m.ok {
			continue
		}
		any = true
		mean += m.dist.Mean()
		variance += m.dist.Variance()
		if m.df > df {
			df = m.df
		}
	}
	if !any || df <= 0 {
		return 0
	}
	d, err := stats.FitGammaMoments(mean, variance)
	if err != nil {
		d = stats.GammaDist{Shape: 1e6, Scale: mean / 1e6}
	}
	return df * d.TailProb(threshold)
}

// Estimate returns each shard's expected number of documents in the
// global top-K for the query. Shards with no matching term get 0.
func (g *GammaEstimator) Estimate(terms []string, k int) []float64 {
	models := make([][]termModel, len(g.Shards))
	maxScore := 0.0
	anyMatch := false
	for si, s := range g.Shards {
		models[si] = make([]termModel, len(terms))
		for ti, t := range terms {
			m := fitTerm(s, t)
			models[si][ti] = m
			if m.ok {
				anyMatch = true
				if m.max > maxScore {
					maxScore = m.max
				}
			}
		}
	}
	out := make([]float64, len(g.Shards))
	if !anyMatch {
		return out
	}
	estimate := func(si int, s float64) float64 {
		return expectedAboveTaily(models[si], g.Shards[si].NumDocs, s)
	}
	if g.Mode == ModeUnion {
		estimate = func(si int, s float64) float64 {
			return expectedAboveUnion(models[si], s)
		}
	}
	// Find the collection-wide score s* with expected count K above it
	// (binary search; the expected count is monotone decreasing in the
	// threshold). Taily's summed moments can push the model's support
	// above any single term's max score, so the bracket spans the summed
	// means plus a generous tail allowance.
	countAt := func(s float64) float64 {
		total := 0.0
		for si := range models {
			total += estimate(si, s)
		}
		return total
	}
	lo, hi := 0.0, maxScore*float64(len(terms)+1)*4+1
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if countAt(mid) > float64(k) {
			lo = mid
		} else {
			hi = mid
		}
	}
	sStar := (lo + hi) / 2
	for si := range models {
		out[si] = estimate(si, sStar)
	}
	return out
}

// EstimateCounts rounds Estimate to integer contribution predictions, the
// form Algorithm 1 consumes in the Cottage-withoutML ablation.
func (g *GammaEstimator) EstimateCounts(terms []string, k int) []int {
	est := g.Estimate(terms, k)
	out := make([]int, len(est))
	for i, e := range est {
		out[i] = int(math.Round(e))
		if out[i] > k {
			out[i] = k
		}
	}
	return out
}
