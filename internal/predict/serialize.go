package predict

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cottage/internal/nn"
)

// isnPredictorWire is the gob form of one ISN's trained models. Networks
// are nested gob blobs so their wire format stays owned by package nn.
type isnPredictorWire struct {
	ISN     int
	K       int
	QK      []byte
	QK2     []byte
	Lat     []byte
	LatBins Bins
}

func encodeNet(n *nn.Network) ([]byte, error) {
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode serializes the predictor with encoding/gob.
func (p *ISNPredictor) Encode(w io.Writer) error {
	qk, err := encodeNet(p.QKNet)
	if err != nil {
		return fmt.Errorf("predict: encoding QK net: %w", err)
	}
	qk2, err := encodeNet(p.QK2Net)
	if err != nil {
		return fmt.Errorf("predict: encoding QK2 net: %w", err)
	}
	lat, err := encodeNet(p.LatNet)
	if err != nil {
		return fmt.Errorf("predict: encoding latency net: %w", err)
	}
	return gob.NewEncoder(w).Encode(isnPredictorWire{
		ISN: p.ISN, K: p.K, QK: qk, QK2: qk2, Lat: lat, LatBins: p.LatBins,
	})
}

// DecodeISNPredictor deserializes a predictor written by Encode.
func DecodeISNPredictor(r io.Reader) (*ISNPredictor, error) {
	var w isnPredictorWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("predict: decoding predictor: %w", err)
	}
	qk, err := nn.Decode(bytes.NewReader(w.QK))
	if err != nil {
		return nil, err
	}
	qk2, err := nn.Decode(bytes.NewReader(w.QK2))
	if err != nil {
		return nil, err
	}
	lat, err := nn.Decode(bytes.NewReader(w.Lat))
	if err != nil {
		return nil, err
	}
	return &ISNPredictor{
		ISN: w.ISN, K: w.K,
		QKNet: qk, QK2Net: qk2, LatNet: lat, LatBins: w.LatBins,
		qkPred:  qk.NewPredictor(),
		qk2Pred: qk2.NewPredictor(),
		latPred: lat.NewPredictor(),
	}, nil
}
