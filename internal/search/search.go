// Package search implements top-K query evaluation over an index shard:
// exhaustive document-at-a-time (DAAT) scoring plus the MaxScore
// (Turtle & Flood) and WAND (Broder et al.) dynamic-pruning strategies the
// paper names as the reason a query's service time is hard to predict from
// posting-list length alone (Section III-C). Every evaluator reports
// ExecStats — the documents scored and postings traversed — which drive
// the cluster simulator's service-time cost model and the C_RES metric.
//
// Postings are stored bit-packed in 64-posting blocks (internal/index wire
// v5); evaluators walk them through cursors that decode one block at a
// time into fixed scratch. The reference strategies (Exhaustive, MaxScore,
// WAND, TAAT, Anytime) visit exactly the postings their flat-slice
// ancestors visited, so their ExecStats — and therefore the simulator's
// figures — are unchanged. The block-max strategies (MaxScoreBM, WANDBM)
// additionally consult the quantized per-block bounds to skip whole blocks
// without decoding them; they return bitwise-identical hits with less
// work.
package search

import (
	"sync"

	"cottage/internal/index"
)

// Hit is one scored document in a shard's response.
type Hit struct {
	Doc   int64 // collection-wide document ID
	Local uint32
	Score float64
}

// ExecStats quantifies the work one query evaluation performed. The cost
// model converts it to CPU cycles (internal/cluster).
type ExecStats struct {
	// PostingsTraversed counts cursor advancements, including seeks
	// (a seek is one advancement: postings are binary-searched).
	PostingsTraversed int
	// DocsScored counts candidate documents whose score was computed
	// (fully or far enough to be rejected).
	DocsScored int
	// HeapInserts counts top-K heap updates.
	HeapInserts int
	// TermsMatched is how many of the query's terms exist in the shard.
	TermsMatched int
	// BlocksDecoded counts posting blocks unpacked from their bit-packed
	// form. Only the block-max strategies report it (the reference
	// strategies leave it zero so their stats stay comparable across
	// versions); it is observability, not a cost-model input.
	BlocksDecoded int
	// BlocksSkipped counts skip decisions the block-max strategies made
	// on quantized bounds — block ranges ruled out without decoding.
	BlocksSkipped int
}

// Add accumulates other into s.
func (s *ExecStats) Add(other ExecStats) {
	s.PostingsTraversed += other.PostingsTraversed
	s.DocsScored += other.DocsScored
	s.HeapInserts += other.HeapInserts
	s.TermsMatched += other.TermsMatched
	s.BlocksDecoded += other.BlocksDecoded
	s.BlocksSkipped += other.BlocksSkipped
}

// Result is a shard's answer to a query: its local top-K and the work done.
type Result struct {
	Hits  []Hit // descending score, ties broken by ascending doc ID
	Stats ExecStats
	// Terminated reports that the evaluation stopped at a deadline before
	// visiting every promising region (only Anytime sets it). The hits are
	// still exactly scored; the set may just be incomplete.
	Terminated bool
	// ScoreBound is the quality certificate: an upper bound on the true
	// k-th best score in the shard. When Terminated is false the result is
	// exact and ScoreBound equals the k-th returned score (or 0 with fewer
	// than k matches); when true, no missing document can beat it.
	ScoreBound float64
}

// Evaluator is a query evaluation strategy over one shard.
type Evaluator func(s *index.Shard, terms []string, k int) Result

// Strategy names an evaluation algorithm.
type Strategy int

const (
	// StrategyExhaustive scores every posting of every query term.
	StrategyExhaustive Strategy = iota
	// StrategyMaxScore skips non-essential lists whose upper bounds
	// cannot lift a document into the top-K.
	StrategyMaxScore
	// StrategyWAND uses pivot-based skipping with per-term upper bounds.
	StrategyWAND
	// StrategyTAAT scores term-at-a-time with accumulators (no pruning).
	StrategyTAAT
	// StrategyMaxScoreBM is MaxScore with block-max refinement: probes
	// into non-essential lists are abandoned when the quantized bound of
	// the block they would decode cannot lift the document.
	StrategyMaxScoreBM
	// StrategyWANDBM is Block-Max WAND (Ding & Suel): after the pivot is
	// chosen on global bounds, the quantized bounds of the blocks
	// spanning the pivot document decide whether to evaluate or to jump
	// past the blocks entirely.
	StrategyWANDBM
)

// String returns the strategy's name.
func (st Strategy) String() string {
	switch st {
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyMaxScore:
		return "maxscore"
	case StrategyWAND:
		return "wand"
	case StrategyTAAT:
		return "taat"
	case StrategyMaxScoreBM:
		return "maxscore-bm"
	case StrategyWANDBM:
		return "wand-bm"
	default:
		return "unknown"
	}
}

// ParseStrategy maps a strategy name back to its Strategy.
func ParseStrategy(name string) (Strategy, bool) {
	for _, st := range []Strategy{
		StrategyExhaustive, StrategyMaxScore, StrategyWAND,
		StrategyTAAT, StrategyMaxScoreBM, StrategyWANDBM,
	} {
		if st.String() == name {
			return st, true
		}
	}
	return 0, false
}

// Eval dispatches to the named strategy.
func Eval(st Strategy, s *index.Shard, terms []string, k int) Result {
	switch st {
	case StrategyExhaustive:
		return Exhaustive(s, terms, k)
	case StrategyMaxScore:
		return MaxScore(s, terms, k)
	case StrategyWAND:
		return WAND(s, terms, k)
	case StrategyTAAT:
		return TAAT(s, terms, k)
	case StrategyMaxScoreBM:
		return MaxScoreBM(s, terms, k)
	case StrategyWANDBM:
		return WANDBM(s, terms, k)
	default:
		panic("search: unknown strategy")
	}
}

// cursor walks one term's postings, decoding the bit-packed blocks
// lazily: whichever block holds the cursor's position is unpacked into
// the cursor-owned scratch arrays, and stays cached until the position
// leaves it. All movement is through pos; doc/posting decode on demand.
type cursor struct {
	ti      *index.TermInfo
	pos     int // global posting index
	bi      int // block currently decoded into scratch, -1 if none
	idx     int // position in the cursorSet slab (term-appearance order)
	decodes int // block decodes performed (BlocksDecoded for BM stats)
	docs    [index.BlockSize]uint32
	tfs     [index.BlockSize]uint32
}

func (c *cursor) exhausted() bool { return c.pos >= c.ti.Len() }

// load makes block bi the decoded block. The hit check stays in the
// (inlinable) caller-facing methods; the decode itself is kept out of
// line so doc/posting compile down to a compare plus an array read on
// the cached-block path — the overwhelmingly common one.
func (c *cursor) load(bi int) {
	if c.bi != bi {
		c.loadSlow(bi)
	}
}

//go:noinline
func (c *cursor) loadSlow(bi int) {
	c.ti.DecodeBlockInto(bi, &c.docs, &c.tfs)
	c.bi = bi
	c.decodes++
}

// loadPos decodes the block holding the current position.
//
//go:noinline
func (c *cursor) loadPos() {
	c.loadSlow(c.pos / index.BlockSize)
}

func (c *cursor) doc() uint32 {
	if c.pos/index.BlockSize != c.bi {
		c.loadPos()
	}
	return c.docs[c.pos%index.BlockSize]
}

func (c *cursor) posting() index.Posting {
	if c.pos/index.BlockSize != c.bi {
		c.loadPos()
	}
	return index.Posting{Doc: c.docs[c.pos%index.BlockSize], TF: c.tfs[c.pos%index.BlockSize]}
}

// tf reads the term frequency at the cursor position. The position's
// block must already be decoded — doc() and a successful seek() both
// guarantee that — which is what lets this inline where posting()'s
// reload check would not.
func (c *cursor) tf() uint32 { return c.tfs[c.pos%index.BlockSize] }

// blockLen is block bi's live posting count.
func (c *cursor) blockLen(bi int) int {
	n := c.ti.Len() - bi*index.BlockSize
	if n > index.BlockSize {
		n = index.BlockSize
	}
	return n
}

// shallowBlock returns the index of the block containing the first
// posting with Doc >= doc, searching forward from the cursor's current
// block, or -1 when the list has no such posting. It reads only the
// block-max overlay — no payload is decoded — which is what makes
// quantized-bound skipping cheaper than seeking.
func (c *cursor) shallowBlock(doc uint32) int {
	blocks := c.ti.Blocks
	bi := c.pos / index.BlockSize
	if bi >= len(blocks) {
		return -1
	}
	if blocks[bi].MaxDoc >= doc {
		return bi
	}
	lo, hi := bi+1, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].MaxDoc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(blocks) {
		return -1
	}
	return lo
}

// seek advances the cursor to the first posting with Doc >= doc and
// reports whether a posting at exactly doc exists. Forward-only, like
// the flat-slice Seek it replaces: a target at or before the current
// document leaves the cursor in place.
func (c *cursor) seek(doc uint32) bool {
	if c.exhausted() {
		return false
	}
	if d := c.doc(); d >= doc {
		return d == doc
	}
	bi := c.shallowBlock(doc)
	if bi < 0 {
		c.pos = c.ti.Len()
		return false
	}
	i := 0
	if bi == c.pos/index.BlockSize {
		i = c.pos % index.BlockSize // within the current block: scan forward
	} else {
		c.pos = bi * index.BlockSize
	}
	c.load(bi)
	// The block's MaxDoc >= doc, so the scan stops inside the live span.
	for c.docs[i] < doc {
		i++
	}
	c.pos = bi*index.BlockSize + i
	return c.docs[i] == doc
}

// reposition places the cursor at the first posting with Doc >= doc,
// regardless of its current position (Anytime visits document ranges out
// of order, so cursors move backward between ranges).
func (c *cursor) reposition(doc uint32) {
	blocks := c.ti.Blocks
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].MaxDoc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(blocks) {
		c.pos = c.ti.Len()
		return
	}
	c.load(lo)
	i := 0
	for c.docs[i] < doc {
		i++
	}
	c.pos = lo*index.BlockSize + i
}

// cursorSet is the pooled per-evaluation cursor scratch: one contiguous
// slab of cursors plus the pointer slice the evaluators walk. Recycling
// it through a sync.Pool makes steady-state query evaluation stop
// allocating a map, a slice and k cursors per (query, shard) pair. The
// set also carries one spare decode scratch for canonicalScore, so
// re-scoring an accepted candidate never disturbs a cursor's cached
// block.
type cursorSet struct {
	slab []cursor
	cs   []*cursor
	// contrib is slab-parallel per-candidate scratch: MaxScore records
	// each term's contribution at the current candidate here, so an
	// accepted candidate's canonical (slab-order) score is a re-sum of
	// m floats instead of a re-lookup of m postings.
	contrib []float64
	docs    [index.BlockSize]uint32
	tfs     [index.BlockSize]uint32
}

var cursorPool = sync.Pool{New: func() any { return new(cursorSet) }}

// openCursorSet resolves terms against the shard dictionary, dropping
// duplicates and absent terms (duplicates are detected by TermInfo
// identity — equal terms resolve to the same dictionary entry — so no
// map is needed for the handful of terms real queries carry). The set
// comes from a pool; the caller must put() it back once the cursors are
// dead, and must not retain them past that point.
func openCursorSet(s *index.Shard, terms []string) *cursorSet {
	x := cursorPool.Get().(*cursorSet)
	slab := x.slab[:0]
	for _, t := range terms {
		ti, ok := s.Lookup(t)
		if !ok {
			continue
		}
		dup := false
		for i := range slab {
			if slab[i].ti == ti {
				dup = true
				break
			}
		}
		if !dup {
			slab = append(slab, cursor{})
			c := &slab[len(slab)-1]
			c.ti, c.pos, c.bi, c.decodes = ti, 0, -1, 0
			c.idx = len(slab) - 1
		}
	}
	// Pointers are taken only after the slab stops growing.
	cs := x.cs[:0]
	for i := range slab {
		cs = append(cs, &slab[i])
	}
	if cap(x.contrib) < len(slab) {
		x.contrib = make([]float64, len(slab))
	}
	x.slab, x.cs, x.contrib = slab, cs, x.contrib[:len(slab)]
	return x
}

func (x *cursorSet) put() { cursorPool.Put(x) }

// findPosting locates doc's posting in a term by binary search over the
// block-max overlay plus one block decode into the caller's scratch.
func findPosting(ti *index.TermInfo, doc uint32, docs, tfs *[index.BlockSize]uint32) (index.Posting, bool) {
	blocks := ti.Blocks
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].MaxDoc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(blocks) {
		return index.Posting{}, false
	}
	n := ti.DecodeBlockInto(lo, docs, tfs)
	a, b := 0, n
	for a < b {
		mid := (a + b) / 2
		if docs[mid] < doc {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if a == n || docs[a] != doc {
		return index.Posting{}, false
	}
	return index.Posting{Doc: docs[a], TF: tfs[a]}, true
}

// canonicalScore computes a document's full score by summing term
// contributions in slab (term-appearance) order, so that every evaluation
// strategy assigns bitwise-identical scores to the same document and the
// pruning strategies return exactly the exhaustive top-K. The slab is
// iterated rather than the cs pointer slice because MaxScore and WAND
// reorder cs; the slab always keeps the order Exhaustive sums in.
func canonicalScore(s *index.Shard, set *cursorSet, doc uint32) float64 {
	score := 0.0
	for i := range set.slab {
		c := &set.slab[i]
		if p, ok := c.lookupPosting(doc, &set.docs, &set.tfs); ok {
			score += s.TermScore(c.ti, p)
		}
	}
	return score
}

// lookupPosting finds doc's posting in the cursor's term. When the
// cursor's cached block covers doc's range it is searched directly —
// the evaluator just parked this cursor at or near doc, so re-scoring
// an accepted candidate almost never re-decodes — otherwise it falls
// back to findPosting with the set's spare scratch, leaving the cached
// block undisturbed.
func (c *cursor) lookupPosting(doc uint32, docs, tfs *[index.BlockSize]uint32) (index.Posting, bool) {
	if c.bi >= 0 && c.docs[0] <= doc && doc <= c.ti.Blocks[c.bi].MaxDoc {
		// Blocks partition the doc space, so doc can live only here.
		n := c.blockLen(c.bi)
		a, b := 0, n
		for a < b {
			mid := (a + b) / 2
			if c.docs[mid] < doc {
				a = mid + 1
			} else {
				b = mid
			}
		}
		if a < n && c.docs[a] == doc {
			return index.Posting{Doc: doc, TF: c.tfs[a]}, true
		}
		return index.Posting{}, false
	}
	return findPosting(c.ti, doc, docs, tfs)
}

// Exhaustive evaluates the query by a full multiway DAAT merge: every
// posting of every matching term is visited. This is the paper's baseline
// "exhaustive search" behaviour at a single ISN.
func Exhaustive(s *index.Shard, terms []string, k int) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	tk := newTopK(k)
	for {
		// Find the minimum current document among live cursors.
		minDoc := uint32(0)
		live := false
		for _, c := range cs {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		score := 0.0
		for _, c := range cs {
			if !c.exhausted() && c.doc() == minDoc {
				score += s.TermScore(c.ti, index.Posting{Doc: minDoc, TF: c.tf()})
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		if tk.offer(minDoc, score) {
			st.HeapInserts++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// MaxScore evaluates the query with the MaxScore optimization: terms are
// ordered by their maximum possible contribution, and once the top-K
// threshold exceeds the combined upper bound of the lowest-impact lists,
// those lists stop producing candidates and are only probed for documents
// surfaced by the essential lists.
func MaxScore(s *index.Shard, terms []string, k int) Result {
	return maxScore(s, terms, k, false)
}

// MaxScoreBM is MaxScore refined with the quantized block bounds: before
// a probe into a non-essential list seeks (and decodes a block), the
// QMax bound of the block the seek would land in is checked; when even
// that ceiling plus the remaining lists' global bounds cannot beat the
// threshold, the candidate is abandoned without touching the payload.
// Hits are bitwise-identical to MaxScore — the bounds only veto work,
// never scores — but BlocksSkipped probes and their decodes are saved.
func MaxScoreBM(s *index.Shard, terms []string, k int) Result {
	return maxScore(s, terms, k, true)
}

func maxScore(s *index.Shard, terms []string, k int, blockMax bool) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	// Ascending by max score: cs[0] is the least impactful list.
	// Insertion sort: a query carries a handful of terms, and the
	// reflection setup sort.Slice pays per call is visible at per-query
	// evaluation rates.
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i
		for j > 0 && cs[j-1].ti.Stats.MaxScore > c.ti.Stats.MaxScore {
			cs[j] = cs[j-1]
			j--
		}
		cs[j] = c
	}
	m := len(cs)
	prefix := make([]float64, m) // prefix[i] = sum of max scores of cs[0..i]
	acc := 0.0
	for i, c := range cs {
		acc += c.ti.Stats.MaxScore
		prefix[i] = acc
	}
	tk := newTopK(k)
	first := 0 // first essential list index
	for first < m {
		// Candidate: min doc among essential lists.
		minDoc := uint32(0)
		live := false
		for _, c := range cs[first:] {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		// Score essential lists at minDoc, recording per-term
		// contributions: candidates are strictly increasing and probes
		// seek exactly to the candidate, so an accepted document has had
		// every list that contains it credited — its canonical score is
		// the slab-order re-sum of contrib, no posting re-lookup needed.
		contrib := set.contrib
		for i := range contrib {
			contrib[i] = 0
		}
		score := 0.0
		for _, c := range cs[first:] {
			if !c.exhausted() && c.doc() == minDoc {
				v := s.TermScore(c.ti, index.Posting{Doc: minDoc, TF: c.tf()})
				score += v
				contrib[c.idx] = v
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		// Probe non-essential lists from most to least impactful,
		// abandoning the document once even full credit from the
		// remaining lists cannot beat the threshold.
		theta := tk.threshold()
		ok := true
		for j := first - 1; j >= 0; j-- {
			if score+prefix[j] <= theta {
				ok = false
				break
			}
			c := cs[j]
			if blockMax {
				// Replace list j's global bound with the quantized ceiling
				// of the one block its seek would decode. Sound because
				// DequantBound >= the block's exact Max >= any contribution
				// from a document in the block — so this prune is strictly
				// tighter than the prefix[j] one above.
				bb := 0.0
				if bi := c.shallowBlock(minDoc); bi >= 0 {
					bb = index.DequantBound(c.ti.Blocks[bi].QMax, c.ti.Stats.MaxScore)
				}
				rest := 0.0
				if j > 0 {
					rest = prefix[j-1]
				}
				if score+bb+rest <= theta {
					ok = false
					st.BlocksSkipped++
					break
				}
			}
			if c.seek(minDoc) {
				v := s.TermScore(c.ti, index.Posting{Doc: minDoc, TF: c.tf()})
				score += v
				contrib[c.idx] = v
			}
			st.PostingsTraversed++
		}
		if ok && score > theta {
			// Re-sum in slab (term-appearance) order so ties and float
			// ordering match the exhaustive evaluator exactly: the same
			// contribution values added in the same order, with exact
			// +0.0 identities for absent terms.
			full := 0.0
			for _, v := range contrib {
				full += v
			}
			if tk.offer(minDoc, full) {
				st.HeapInserts++
			}
		}
		// Threshold may have moved: recompute the essential boundary.
		theta = tk.threshold()
		for first < m && prefix[first] <= theta {
			first++
		}
	}
	if blockMax {
		for _, c := range cs {
			st.BlocksDecoded += c.decodes
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// WAND evaluates the query with the WAND pivot algorithm: cursors stay
// sorted by their current document; the pivot is the first cursor at which
// the cumulative upper bound exceeds the threshold, and cursors before the
// pivot leapfrog directly to the pivot document.
func WAND(s *index.Shard, terms []string, k int) Result {
	return wand(s, terms, k, false)
}

// WANDBM evaluates the query with Block-Max WAND (Ding & Suel): the
// pivot is still chosen on the global per-term bounds, but before the
// pivot document is evaluated, the quantized bounds of the blocks that
// span it are summed. When that refined ceiling cannot beat the
// threshold, the whole region up to the nearest block boundary is
// skipped with one seek instead of being scored document by document.
// Hits are bitwise-identical to WAND; the block bounds only veto work.
func WANDBM(s *index.Shard, terms []string, k int) Result {
	return wand(s, terms, k, true)
}

func wand(s *index.Shard, terms []string, k int, blockMax bool) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	tk := newTopK(k)
	for {
		// Drop exhausted cursors; sort the rest by current doc.
		live := cs[:0]
		for _, c := range cs {
			if !c.exhausted() {
				live = append(live, c)
			}
		}
		cs = live
		if len(cs) == 0 {
			break
		}
		// Insertion sort by current doc: queries carry a handful of
		// cursors and at most a couple moved since the last iteration,
		// so this beats sort.Slice (which pays reflection on every
		// swap) on the loop's hottest edge.
		for i := 1; i < len(cs); i++ {
			c := cs[i]
			d := c.doc()
			j := i
			for j > 0 && cs[j-1].doc() > d {
				cs[j] = cs[j-1]
				j--
			}
			cs[j] = c
		}
		// Find the pivot.
		theta := tk.threshold()
		ub := 0.0
		pivot := -1
		for i, c := range cs {
			ub += c.ti.Stats.MaxScore
			if ub > theta {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			break // no document can beat the threshold anymore
		}
		pivotDoc := cs[pivot].doc()
		if blockMax {
			// Refine the pivot's ceiling with the quantized bounds of the
			// blocks containing pivotDoc (overlay only — nothing decodes).
			// The bound must cover every list that could credit pivotDoc,
			// which includes cursors past the pivot parked exactly on it.
			end := pivot
			for end+1 < len(cs) && cs[end+1].doc() == pivotDoc {
				end++
			}
			blockUB := 0.0
			skipTo := ^uint32(0)
			for _, c := range cs[:end+1] {
				bi := c.shallowBlock(pivotDoc)
				if bi < 0 {
					continue
				}
				blk := &c.ti.Blocks[bi]
				blockUB += index.DequantBound(blk.QMax, c.ti.Stats.MaxScore)
				if blk.MaxDoc < skipTo {
					skipTo = blk.MaxDoc
				}
			}
			if blockUB <= theta {
				// No document from pivotDoc to the earliest block horizon
				// can beat the threshold: jump straight past it.
				st.BlocksSkipped++
				next := skipTo + 1
				// Documents past pivotDoc may still gain credit from lists
				// beyond end; never jump past the first of them. Both skip
				// targets are strictly beyond pivotDoc (the blocks' MaxDoc
				// >= pivotDoc, and cs[end+1] sits past it), so the seek
				// below always progresses.
				if end+1 < len(cs) && cs[end+1].doc() < next {
					next = cs[end+1].doc()
				}
				// Advance the highest-impact cursor at or before pivotDoc
				// (mirrors the plain-WAND advancement rule).
				adv := 0
				for i := 1; i <= end; i++ {
					if cs[i].ti.Stats.MaxScore > cs[adv].ti.Stats.MaxScore {
						adv = i
					}
				}
				cs[adv].seek(next)
				st.PostingsTraversed++
				continue
			}
		}
		if cs[0].doc() == pivotDoc {
			// Full evaluation at pivotDoc.
			score := 0.0
			for _, c := range cs {
				if c.doc() != pivotDoc {
					break
				}
				score += s.TermScore(c.ti, index.Posting{Doc: pivotDoc, TF: c.tf()})
			}
			st.DocsScored++
			if score > theta {
				if tk.offer(pivotDoc, canonicalScore(s, set, pivotDoc)) {
					st.HeapInserts++
				}
			}
			for _, c := range cs {
				if c.exhausted() || c.doc() != pivotDoc {
					continue
				}
				c.pos++
				st.PostingsTraversed++
			}
		} else {
			// Advance the highest-upper-bound cursor that is strictly
			// before the pivot document (one always exists: cs[0]).
			// Restricting to doc < pivotDoc guarantees progress.
			adv := 0
			for i := 1; i < pivot; i++ {
				if cs[i].doc() < pivotDoc && cs[i].ti.Stats.MaxScore > cs[adv].ti.Stats.MaxScore {
					adv = i
				}
			}
			cs[adv].seek(pivotDoc)
			st.PostingsTraversed++
		}
	}
	if blockMax {
		for _, c := range set.slab {
			st.BlocksDecoded += c.decodes
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// topK is a fixed-capacity min-heap of (doc, score) keeping the best k.
// Ties on score are broken toward smaller document IDs, deterministically.
// The heap is a hand-inlined slice heap — container/heap's interface{}
// Push/Pop boxed every Hit and kept the comparisons behind interface
// dispatch on what is the hottest loop of query evaluation.
type topK struct {
	k int
	h []Hit // min-heap, worst hit at h[0]
}

// newTopK allocates the heap at full capacity up front, so offer never
// grows the slice: after this call the top-K path is allocation-free.
func newTopK(k int) *topK { return &topK{k: k, h: make([]Hit, 0, k)} }

// worseHit reports whether a should be evicted before b (min-heap order):
// lower score first; among equal scores, the larger doc ID goes first.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Local > b.Local
}

// threshold is the score a new document must strictly exceed to enter a
// full heap; -inf semantics are represented by a large negative number so
// zero-scored documents still enter an unfilled heap.
func (t *topK) threshold() float64 {
	if len(t.h) < t.k {
		return -1
	}
	return t.h[0].Score
}

// offer inserts the document if it qualifies; reports whether the heap
// changed.
func (t *topK) offer(doc uint32, score float64) bool {
	if len(t.h) < t.k {
		t.h = append(t.h, Hit{Local: doc, Score: score})
		t.siftUp(len(t.h) - 1)
		return true
	}
	min := t.h[0]
	if score > min.Score || (score == min.Score && doc < min.Local) {
		t.h[0] = Hit{Local: doc, Score: score}
		t.siftDown(0)
		return true
	}
	return false
}

func (t *topK) siftUp(i int) {
	h := t.h
	for i > 0 {
		p := (i - 1) / 2
		if !worseHit(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	h := t.h
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && worseHit(h[r], h[l]) {
			m = r
		}
		if !worseHit(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// hits drains the heap into a descending-score slice with global doc IDs
// resolved.
func (t *topK) hits(s *index.Shard) []Hit {
	out := make([]Hit, len(t.h))
	copy(out, t.h)
	// Descending score, ascending local doc on ties; insertion sort for
	// the same per-query reflection-cost reason as the cursor orderings
	// (k is small).
	for i := 1; i < len(out); i++ {
		h := out[i]
		j := i
		for j > 0 && (out[j-1].Score < h.Score ||
			(out[j-1].Score == h.Score && out[j-1].Local > h.Local)) {
			out[j] = out[j-1]
			j--
		}
		out[j] = h
	}
	for i := range out {
		out[i].Doc = s.GlobalDoc(out[i].Local)
	}
	return out
}
