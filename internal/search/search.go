// Package search implements top-K query evaluation over an index shard:
// exhaustive document-at-a-time (DAAT) scoring plus the MaxScore
// (Turtle & Flood) and WAND (Broder et al.) dynamic-pruning strategies the
// paper names as the reason a query's service time is hard to predict from
// posting-list length alone (Section III-C). Every evaluator reports
// ExecStats — the documents scored and postings traversed — which drive
// the cluster simulator's service-time cost model and the C_RES metric.
package search

import (
	"sort"
	"sync"

	"cottage/internal/index"
)

// Hit is one scored document in a shard's response.
type Hit struct {
	Doc   int64 // collection-wide document ID
	Local uint32
	Score float64
}

// ExecStats quantifies the work one query evaluation performed. The cost
// model converts it to CPU cycles (internal/cluster).
type ExecStats struct {
	// PostingsTraversed counts cursor advancements, including seeks
	// (a seek is one advancement: postings are binary-searched).
	PostingsTraversed int
	// DocsScored counts candidate documents whose score was computed
	// (fully or far enough to be rejected).
	DocsScored int
	// HeapInserts counts top-K heap updates.
	HeapInserts int
	// TermsMatched is how many of the query's terms exist in the shard.
	TermsMatched int
}

// Add accumulates other into s.
func (s *ExecStats) Add(other ExecStats) {
	s.PostingsTraversed += other.PostingsTraversed
	s.DocsScored += other.DocsScored
	s.HeapInserts += other.HeapInserts
	s.TermsMatched += other.TermsMatched
}

// Result is a shard's answer to a query: its local top-K and the work done.
type Result struct {
	Hits  []Hit // descending score, ties broken by ascending doc ID
	Stats ExecStats
	// Terminated reports that the evaluation stopped at a deadline before
	// visiting every promising region (only Anytime sets it). The hits are
	// still exactly scored; the set may just be incomplete.
	Terminated bool
	// ScoreBound is the quality certificate: an upper bound on the true
	// k-th best score in the shard. When Terminated is false the result is
	// exact and ScoreBound equals the k-th returned score (or 0 with fewer
	// than k matches); when true, no missing document can beat it.
	ScoreBound float64
}

// Evaluator is a query evaluation strategy over one shard.
type Evaluator func(s *index.Shard, terms []string, k int) Result

// Strategy names an evaluation algorithm.
type Strategy int

const (
	// StrategyExhaustive scores every posting of every query term.
	StrategyExhaustive Strategy = iota
	// StrategyMaxScore skips non-essential lists whose upper bounds
	// cannot lift a document into the top-K.
	StrategyMaxScore
	// StrategyWAND uses pivot-based skipping with per-term upper bounds.
	StrategyWAND
	// StrategyTAAT scores term-at-a-time with accumulators (no pruning).
	StrategyTAAT
)

// String returns the strategy's name.
func (st Strategy) String() string {
	switch st {
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyMaxScore:
		return "maxscore"
	case StrategyWAND:
		return "wand"
	case StrategyTAAT:
		return "taat"
	default:
		return "unknown"
	}
}

// Eval dispatches to the named strategy.
func Eval(st Strategy, s *index.Shard, terms []string, k int) Result {
	switch st {
	case StrategyExhaustive:
		return Exhaustive(s, terms, k)
	case StrategyMaxScore:
		return MaxScore(s, terms, k)
	case StrategyWAND:
		return WAND(s, terms, k)
	case StrategyTAAT:
		return TAAT(s, terms, k)
	default:
		panic("search: unknown strategy")
	}
}

// cursor walks one term's postings.
type cursor struct {
	ti  *index.TermInfo
	pos int
}

func (c *cursor) exhausted() bool { return c.pos >= len(c.ti.Postings) }
func (c *cursor) doc() uint32     { return c.ti.Postings[c.pos].Doc }
func (c *cursor) posting() index.Posting {
	return c.ti.Postings[c.pos]
}

// seek advances the cursor to the first posting with Doc >= doc and
// reports whether a posting at exactly doc exists.
func (c *cursor) seek(doc uint32) bool {
	// Fast path: already there or one step away, common in dense merges.
	for !c.exhausted() && c.doc() < doc && c.pos+1 < len(c.ti.Postings) && c.ti.Postings[c.pos+1].Doc <= doc {
		c.pos++
	}
	if !c.exhausted() && c.doc() < doc {
		c.pos += index.Seek(c.ti.Postings[c.pos:], doc)
	}
	return !c.exhausted() && c.doc() == doc
}

// cursorSet is the pooled per-evaluation cursor scratch: one contiguous
// slab of cursors plus the pointer slice the evaluators walk. Recycling
// it through a sync.Pool makes steady-state query evaluation stop
// allocating a map, a slice and k cursors per (query, shard) pair.
type cursorSet struct {
	slab []cursor
	cs   []*cursor
}

var cursorPool = sync.Pool{New: func() any { return new(cursorSet) }}

// openCursorSet resolves terms against the shard dictionary, dropping
// duplicates and absent terms (duplicates are detected by TermInfo
// identity — equal terms resolve to the same dictionary entry — so no
// map is needed for the handful of terms real queries carry). The set
// comes from a pool; the caller must put() it back once the cursors are
// dead, and must not retain them past that point.
func openCursorSet(s *index.Shard, terms []string) *cursorSet {
	x := cursorPool.Get().(*cursorSet)
	slab := x.slab[:0]
	for _, t := range terms {
		ti, ok := s.Lookup(t)
		if !ok {
			continue
		}
		dup := false
		for i := range slab {
			if slab[i].ti == ti {
				dup = true
				break
			}
		}
		if !dup {
			slab = append(slab, cursor{ti: ti})
		}
	}
	// Pointers are taken only after the slab stops growing.
	cs := x.cs[:0]
	for i := range slab {
		cs = append(cs, &slab[i])
	}
	x.slab, x.cs = slab, cs
	return x
}

func (x *cursorSet) put() { cursorPool.Put(x) }

// canonicalScore computes a document's full score by summing term
// contributions in slab (term-appearance) order, so that every evaluation
// strategy assigns bitwise-identical scores to the same document and the
// pruning strategies return exactly the exhaustive top-K. The slab is
// iterated rather than the cs pointer slice because MaxScore and WAND
// reorder cs; the slab always keeps the order Exhaustive sums in.
func canonicalScore(s *index.Shard, set *cursorSet, doc uint32) float64 {
	score := 0.0
	for i := range set.slab {
		ti := set.slab[i].ti
		ps := ti.Postings
		j := index.Seek(ps, doc)
		if j < len(ps) && ps[j].Doc == doc {
			score += s.TermScore(ti, ps[j])
		}
	}
	return score
}

// Exhaustive evaluates the query by a full multiway DAAT merge: every
// posting of every matching term is visited. This is the paper's baseline
// "exhaustive search" behaviour at a single ISN.
func Exhaustive(s *index.Shard, terms []string, k int) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	tk := newTopK(k)
	for {
		// Find the minimum current document among live cursors.
		minDoc := uint32(0)
		live := false
		for _, c := range cs {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		score := 0.0
		for _, c := range cs {
			if !c.exhausted() && c.doc() == minDoc {
				score += s.TermScore(c.ti, c.posting())
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		if tk.offer(minDoc, score) {
			st.HeapInserts++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// MaxScore evaluates the query with the MaxScore optimization: terms are
// ordered by their maximum possible contribution, and once the top-K
// threshold exceeds the combined upper bound of the lowest-impact lists,
// those lists stop producing candidates and are only probed for documents
// surfaced by the essential lists.
func MaxScore(s *index.Shard, terms []string, k int) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	// Ascending by max score: cs[0] is the least impactful list.
	sort.Slice(cs, func(i, j int) bool {
		return cs[i].ti.Stats.MaxScore < cs[j].ti.Stats.MaxScore
	})
	m := len(cs)
	prefix := make([]float64, m) // prefix[i] = sum of max scores of cs[0..i]
	acc := 0.0
	for i, c := range cs {
		acc += c.ti.Stats.MaxScore
		prefix[i] = acc
	}
	tk := newTopK(k)
	first := 0 // first essential list index
	for first < m {
		// Candidate: min doc among essential lists.
		minDoc := uint32(0)
		live := false
		for _, c := range cs[first:] {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		// Score essential lists at minDoc.
		score := 0.0
		for _, c := range cs[first:] {
			if !c.exhausted() && c.doc() == minDoc {
				score += s.TermScore(c.ti, c.posting())
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		// Probe non-essential lists from most to least impactful,
		// abandoning the document once even full credit from the
		// remaining lists cannot beat the threshold.
		theta := tk.threshold()
		ok := true
		for j := first - 1; j >= 0; j-- {
			if score+prefix[j] <= theta {
				ok = false
				break
			}
			c := cs[j]
			if c.seek(minDoc) {
				score += s.TermScore(c.ti, c.posting())
			}
			st.PostingsTraversed++
		}
		if ok && score > theta {
			// Re-score canonically so ties and float ordering match the
			// exhaustive evaluator exactly.
			if tk.offer(minDoc, canonicalScore(s, set, minDoc)) {
				st.HeapInserts++
			}
		}
		// Threshold may have moved: recompute the essential boundary.
		theta = tk.threshold()
		for first < m && prefix[first] <= theta {
			first++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// WAND evaluates the query with the WAND pivot algorithm: cursors stay
// sorted by their current document; the pivot is the first cursor at which
// the cumulative upper bound exceeds the threshold, and cursors before the
// pivot leapfrog directly to the pivot document.
func WAND(s *index.Shard, terms []string, k int) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	tk := newTopK(k)
	for {
		// Drop exhausted cursors; sort the rest by current doc.
		live := cs[:0]
		for _, c := range cs {
			if !c.exhausted() {
				live = append(live, c)
			}
		}
		cs = live
		if len(cs) == 0 {
			break
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].doc() < cs[j].doc() })
		// Find the pivot.
		theta := tk.threshold()
		ub := 0.0
		pivot := -1
		for i, c := range cs {
			ub += c.ti.Stats.MaxScore
			if ub > theta {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			break // no document can beat the threshold anymore
		}
		pivotDoc := cs[pivot].doc()
		if cs[0].doc() == pivotDoc {
			// Full evaluation at pivotDoc.
			score := 0.0
			for _, c := range cs {
				if c.doc() != pivotDoc {
					break
				}
				score += s.TermScore(c.ti, c.posting())
			}
			st.DocsScored++
			if score > theta {
				if tk.offer(pivotDoc, canonicalScore(s, set, pivotDoc)) {
					st.HeapInserts++
				}
			}
			for _, c := range cs {
				if c.exhausted() || c.doc() != pivotDoc {
					continue
				}
				c.pos++
				st.PostingsTraversed++
			}
		} else {
			// Advance the highest-upper-bound cursor that is strictly
			// before the pivot document (one always exists: cs[0]).
			// Restricting to doc < pivotDoc guarantees progress.
			adv := 0
			for i := 1; i < pivot; i++ {
				if cs[i].doc() < pivotDoc && cs[i].ti.Stats.MaxScore > cs[adv].ti.Stats.MaxScore {
					adv = i
				}
			}
			cs[adv].seek(pivotDoc)
			st.PostingsTraversed++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// topK is a fixed-capacity min-heap of (doc, score) keeping the best k.
// Ties on score are broken toward smaller document IDs, deterministically.
// The heap is a hand-inlined slice heap — container/heap's interface{}
// Push/Pop boxed every Hit and kept the comparisons behind interface
// dispatch on what is the hottest loop of query evaluation.
type topK struct {
	k int
	h []Hit // min-heap, worst hit at h[0]
}

// newTopK allocates the heap at full capacity up front, so offer never
// grows the slice: after this call the top-K path is allocation-free.
func newTopK(k int) *topK { return &topK{k: k, h: make([]Hit, 0, k)} }

// worseHit reports whether a should be evicted before b (min-heap order):
// lower score first; among equal scores, the larger doc ID goes first.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Local > b.Local
}

// threshold is the score a new document must strictly exceed to enter a
// full heap; -inf semantics are represented by a large negative number so
// zero-scored documents still enter an unfilled heap.
func (t *topK) threshold() float64 {
	if len(t.h) < t.k {
		return -1
	}
	return t.h[0].Score
}

// offer inserts the document if it qualifies; reports whether the heap
// changed.
func (t *topK) offer(doc uint32, score float64) bool {
	if len(t.h) < t.k {
		t.h = append(t.h, Hit{Local: doc, Score: score})
		t.siftUp(len(t.h) - 1)
		return true
	}
	min := t.h[0]
	if score > min.Score || (score == min.Score && doc < min.Local) {
		t.h[0] = Hit{Local: doc, Score: score}
		t.siftDown(0)
		return true
	}
	return false
}

func (t *topK) siftUp(i int) {
	h := t.h
	for i > 0 {
		p := (i - 1) / 2
		if !worseHit(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	h := t.h
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && worseHit(h[r], h[l]) {
			m = r
		}
		if !worseHit(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// hits drains the heap into a descending-score slice with global doc IDs
// resolved.
func (t *topK) hits(s *index.Shard) []Hit {
	out := make([]Hit, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Local < out[j].Local
	})
	for i := range out {
		out[i].Doc = s.GlobalDoc(out[i].Local)
	}
	return out
}
