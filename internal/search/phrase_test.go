package search

import (
	"strings"
	"testing"

	"cottage/internal/index"
	"cottage/internal/xrand"
)

// buildPositional builds a small positional shard from raw sentences.
func buildPositional(tb testing.TB, docs []string) *index.Shard {
	tb.Helper()
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.EnablePositions()
	for i, d := range docs {
		b.AddTokens(int64(i), index.Tokenize(d))
	}
	return b.Finalize()
}

func TestPhraseBasics(t *testing.T) {
	s := buildPositional(t, []string{
		"the quick brown fox jumps",
		"the brown quick fox",
		"quick brown shoes and a quick brown fox",
		"nothing relevant here",
	})
	r, err := Phrase(s, []string{"quick", "brown", "fox"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, h := range r.Hits {
		got[h.Doc] = true
	}
	if !got[0] || !got[2] || got[1] || got[3] {
		t.Fatalf("phrase matched wrong docs: %v", got)
	}
}

func TestPhraseOrderMatters(t *testing.T) {
	s := buildPositional(t, []string{"alpha beta", "beta alpha"})
	r, err := Phrase(s, []string{"alpha", "beta"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 1 || r.Hits[0].Doc != 0 {
		t.Fatalf("phrase should match only doc 0: %+v", r.Hits)
	}
}

func TestPhraseSingleTermEqualsTermQuery(t *testing.T) {
	s := buildPositional(t, []string{"a b c", "b c d", "c d e"})
	ph, err := Phrase(s, []string{"c"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	ex := Exhaustive(s, []string{"c"}, 10)
	if !sameScores(scoreMultiset(ph), scoreMultiset(ex), 1e-12) {
		t.Fatal("single-term phrase should equal term query")
	}
}

func TestPhraseMissingTermAndEdge(t *testing.T) {
	s := buildPositional(t, []string{"x y z"})
	r, err := Phrase(s, []string{"x", "missing"}, 10)
	if err != nil || len(r.Hits) != 0 {
		t.Fatalf("missing term should yield empty result, got %v %v", r.Hits, err)
	}
	if r, err := Phrase(s, nil, 10); err != nil || len(r.Hits) != 0 {
		t.Fatal("empty phrase should be empty")
	}
	if r, err := Phrase(s, []string{"x"}, 0); err != nil || len(r.Hits) != 0 {
		t.Fatal("k=0 should be empty")
	}
}

func TestPhraseRequiresPositions(t *testing.T) {
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.AddText(0, "plain bag of words index")
	s := b.Finalize()
	if _, err := Phrase(s, []string{"bag", "of"}, 10); err != ErrNotPositional {
		t.Fatalf("expected ErrNotPositional, got %v", err)
	}
}

// TestPhraseAgainstNaive cross-checks the evaluator against a string scan
// over randomly generated sentences.
func TestPhraseAgainstNaive(t *testing.T) {
	rng := xrand.New(71)
	words := []string{"red", "green", "blue", "fast", "slow", "car", "boat", "sky"}
	docs := make([]string, 300)
	for i := range docs {
		n := 3 + rng.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		docs[i] = strings.Join(parts, " ")
	}
	s := buildPositional(t, docs)
	for trial := 0; trial < 60; trial++ {
		plen := 2 + rng.Intn(2)
		phrase := make([]string, plen)
		for j := range phrase {
			phrase[j] = words[rng.Intn(len(words))]
		}
		r, err := Phrase(s, phrase, len(docs))
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, h := range r.Hits {
			got[h.Doc] = true
		}
		needle := " " + strings.Join(phrase, " ") + " "
		for i, d := range docs {
			want := strings.Contains(" "+d+" ", needle)
			if got[int64(i)] != want {
				t.Fatalf("trial %d: doc %d (%q) phrase %v: got %v want %v",
					trial, i, d, phrase, got[int64(i)], want)
			}
		}
	}
}

func TestPositionalValidateAndRoundTrip(t *testing.T) {
	s := buildPositional(t, []string{"one two three two", "two three"})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.HasPositions() {
		t.Fatal("shard should be positional")
	}
	path := t.TempDir() + "/pos.shard"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := index.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPositions() {
		t.Fatal("positions lost in round trip")
	}
	r, err := Phrase(got, []string{"two", "three"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 2 {
		t.Fatalf("phrase on loaded shard found %d docs, want 2", len(r.Hits))
	}
}

func TestPositionalBuilderPanics(t *testing.T) {
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.EnablePositions()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bag-of-words Add on positional builder should panic")
			}
		}()
		b.Add(0, map[string]int{"a": 1}, 1)
	}()
	b2 := index.NewBuilder(0, index.DefaultBM25(), 10)
	b2.AddTokens(0, []string{"a"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EnablePositions after adds should panic")
			}
		}()
		b2.EnablePositions()
	}()
}

func BenchmarkPhrase(b *testing.B) {
	rng := xrand.New(5)
	words := []string{"red", "green", "blue", "fast", "slow", "car", "boat", "sky"}
	bl := index.NewBuilder(0, index.DefaultBM25(), 10)
	bl.EnablePositions()
	for i := 0; i < 5000; i++ {
		n := 10 + rng.Intn(30)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = words[rng.Intn(len(words))]
		}
		bl.AddTokens(int64(i), toks)
	}
	s := bl.Finalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Phrase(s, []string{"fast", "car"}, 10); err != nil {
			b.Fatal(err)
		}
	}
}
