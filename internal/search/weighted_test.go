package search

import (
	"math"
	"testing"

	"cottage/internal/xrand"
)

func TestWeightOneMatchesUnweighted(t *testing.T) {
	s := buildShard(t, 41, 2500)
	for _, q := range queries() {
		// Duplicate terms intentionally differ: the unweighted path
		// collapses them, the weighted path accumulates weight.
		if hasDuplicate(q) {
			continue
		}
		for _, k := range []int{1, 5, 20} {
			plain := Exhaustive(s, q, k)
			weighted := ExhaustiveWeighted(s, Uniform(q), k)
			if !sameScores(scoreMultiset(plain), scoreMultiset(weighted), 1e-12) {
				t.Fatalf("weight-1 exhaustive differs for %v k=%d", q, k)
			}
			wms := MaxScoreWeighted(s, Uniform(q), k)
			if !sameScores(scoreMultiset(plain), scoreMultiset(wms), 1e-9) {
				t.Fatalf("weight-1 maxscore differs for %v k=%d", q, k)
			}
		}
	}
}

func hasDuplicate(q []string) bool {
	seen := map[string]bool{}
	for _, t := range q {
		if seen[t] {
			return true
		}
		seen[t] = true
	}
	return false
}

func TestWeightedStrategiesAgree(t *testing.T) {
	s := buildShard(t, 43, 2000)
	rng := xrand.New(77)
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(4)
		q := make([]WeightedTerm, n)
		for i := range q {
			q[i] = WeightedTerm{Text: term(rng.Intn(300)), Weight: 0.25 + 3*rng.Float64()}
		}
		k := 1 + rng.Intn(15)
		a := ExhaustiveWeighted(s, q, k)
		b := MaxScoreWeighted(s, q, k)
		if !sameScores(scoreMultiset(a), scoreMultiset(b), 1e-9) {
			t.Fatalf("trial %d: weighted maxscore mismatch for %+v k=%d", trial, q, k)
		}
	}
}

func TestWeightsChangeRanking(t *testing.T) {
	s := buildShard(t, 47, 2500)
	q := []string{"wa", "wdp"}
	base := Exhaustive(s, q, 10)
	// Heavily up-weight the rare term: documents containing it should
	// dominate the top-K.
	boosted := ExhaustiveWeighted(s, []WeightedTerm{
		{Text: "wa", Weight: 1},
		{Text: "wdp", Weight: 50},
	}, 10)
	if len(base.Hits) == 0 || len(boosted.Hits) == 0 {
		t.Skip("terms missing from this shard")
	}
	// The boosted top hit must contain the rare term.
	ti, ok := s.Lookup("wdp")
	if !ok {
		t.Skip("rare term absent")
	}
	present := false
	for _, p := range ti.AllPostings() {
		if p.Doc == boosted.Hits[0].Local {
			present = true
			break
		}
	}
	if !present {
		t.Error("top boosted hit does not contain the up-weighted term")
	}
	// Scores scale: uniform weight w multiplies every score by w.
	scaled := ExhaustiveWeighted(s, []WeightedTerm{
		{Text: "wa", Weight: 2},
		{Text: "wdp", Weight: 2},
	}, 10)
	for i := range base.Hits {
		if math.Abs(scaled.Hits[i].Score-2*base.Hits[i].Score) > 1e-9 {
			t.Fatalf("uniform scaling broken at hit %d", i)
		}
	}
}

func TestWeightedDuplicateTermsAccumulate(t *testing.T) {
	s := buildShard(t, 53, 1000)
	a := ExhaustiveWeighted(s, []WeightedTerm{{Text: "wa", Weight: 1}, {Text: "wa", Weight: 1}}, 5)
	b := ExhaustiveWeighted(s, []WeightedTerm{{Text: "wa", Weight: 2}}, 5)
	if !sameScores(scoreMultiset(a), scoreMultiset(b), 1e-12) {
		t.Error("duplicate weighted terms should accumulate")
	}
}

func TestWeightedPanicsOnNonPositive(t *testing.T) {
	s := buildShard(t, 59, 200)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero weight")
		}
	}()
	ExhaustiveWeighted(s, []WeightedTerm{{Text: "wa", Weight: 0}}, 5)
}

func TestWeightedEmpty(t *testing.T) {
	s := buildShard(t, 61, 200)
	if r := ExhaustiveWeighted(s, nil, 10); len(r.Hits) != 0 {
		t.Error("empty weighted query should return nothing")
	}
	if r := MaxScoreWeighted(s, []WeightedTerm{{Text: "missing", Weight: 1}}, 10); len(r.Hits) != 0 {
		t.Error("absent weighted term should return nothing")
	}
}

func BenchmarkMaxScoreWeighted(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []WeightedTerm{{Text: "wa", Weight: 1.5}, {Text: "wb", Weight: 0.7}, {Text: "wc", Weight: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaxScoreWeighted(s, q, 10)
	}
}
