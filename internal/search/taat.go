package search

import (
	"slices"

	"cottage/internal/index"
)

// TAAT evaluates the query term-at-a-time: each term's postings are
// scanned in full, accumulating partial scores per document, and the
// top-K is selected from the accumulators at the end. TAAT is the other
// classic evaluation order (Turtle & Flood compare both); it trades the
// DAAT family's pruning opportunities for perfectly sequential postings
// access. The engine's experiments use DAAT/MaxScore; TAAT exists for the
// pruning ablation benchmarks and as a third independent oracle in the
// cross-strategy equivalence tests.
func TAAT(s *index.Shard, terms []string, k int) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	acc := make(map[uint32]float64)
	var bdocs, btfs [index.BlockSize]uint32
	for _, c := range cs {
		for bi := 0; bi < c.ti.NumBlocks(); bi++ {
			n := c.ti.DecodeBlockInto(bi, &bdocs, &btfs)
			for i := 0; i < n; i++ {
				acc[bdocs[i]] += s.TermScore(c.ti, index.Posting{Doc: bdocs[i], TF: btfs[i]})
				st.PostingsTraversed++
			}
		}
	}
	st.DocsScored = len(acc)
	tk := newTopK(k)
	// Deterministic iteration: offer in ascending document order so the
	// tie-break behaviour matches the DAAT evaluators.
	docs := make([]uint32, 0, len(acc))
	for d := range acc {
		docs = append(docs, d)
	}
	// slices.Sort: non-reflective, and doc IDs are unique so the order
	// is algorithm-independent.
	slices.Sort(docs)
	for _, d := range docs {
		if tk.offer(d, acc[d]) {
			st.HeapInserts++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}
