package search

import (
	"testing"

	"cottage/internal/index"
	"cottage/internal/race"
	"cottage/internal/xrand"
)

// TestBlockMaxDifferential is the skip-enabled strategies' exactness
// battery, mirroring the anytime one: across 320 random shards,
// MaxScoreBM and WANDBM must return bitwise-identical hits — documents,
// score bits, order — to Exhaustive. The quantized bounds may only veto
// work, never change a score, so any unsound skip shows up here.
func TestBlockMaxDifferential(t *testing.T) {
	rng := xrand.New(99)
	for seed := uint64(0); seed < 320; seed++ {
		s := buildRandomShard(t, seed)
		q := randomQuery(rng)
		k := 1 + rng.Intn(25)
		ex := Exhaustive(s, q, k)
		ms := MaxScoreBM(s, q, k)
		wd := WANDBM(s, q, k)
		if !hitsIdentical(ex.Hits, ms.Hits) {
			t.Fatalf("seed %d: maxscore-bm differs from exhaustive for %v k=%d:\n ex=%v\n bm=%v",
				seed, q, k, ex.Hits, ms.Hits)
		}
		if !hitsIdentical(ex.Hits, wd.Hits) {
			t.Fatalf("seed %d: wand-bm differs from exhaustive for %v k=%d:\n ex=%v\n bm=%v",
				seed, q, k, ex.Hits, wd.Hits)
		}
	}
}

// TestBlockMaxNeverDoesMoreWork: MaxScoreBM takes the exact MaxScore
// path except where a quantized bound vetoes a probe, so it can only
// traverse fewer postings, and scores the same candidates. On a skewed
// query the veto must actually fire.
func TestBlockMaxNeverDoesMoreWork(t *testing.T) {
	s := buildShard(t, 31, 8000)
	for _, q := range [][]string{
		{"wa", "wdp"},
		{"wa", "wb", "wc"},
		{"wa", "wb", "wc", "wd"},
	} {
		ms := MaxScore(s, q, 10)
		bm := MaxScoreBM(s, q, 10)
		if !hitsIdentical(ms.Hits, bm.Hits) {
			t.Fatalf("%v: maxscore-bm hits differ from maxscore", q)
		}
		if bm.Stats.PostingsTraversed > ms.Stats.PostingsTraversed {
			t.Errorf("%v: maxscore-bm traversed %d postings, maxscore %d",
				q, bm.Stats.PostingsTraversed, ms.Stats.PostingsTraversed)
		}
		if bm.Stats.DocsScored != ms.Stats.DocsScored {
			t.Errorf("%v: maxscore-bm scored %d docs, maxscore %d",
				q, bm.Stats.DocsScored, ms.Stats.DocsScored)
		}
	}
	bm := MaxScoreBM(s, []string{"wc", "wd", "we"}, 10)
	if bm.Stats.BlocksSkipped == 0 {
		t.Error("balanced mid-frequency query produced no quantized-bound probe vetoes")
	}
	if bm.Stats.BlocksDecoded == 0 {
		t.Error("BlocksDecoded not reported")
	}
	wd := WANDBM(s, []string{"wa", "wb"}, 10)
	if wd.Stats.BlocksSkipped == 0 {
		t.Error("wand-bm made no block skips on the common-term query")
	}
	plain := WAND(s, []string{"wa", "wb"}, 10)
	if wd.Stats.PostingsTraversed >= plain.Stats.PostingsTraversed {
		t.Errorf("wand-bm traversed %d postings, plain wand %d: block skipping saved nothing",
			wd.Stats.PostingsTraversed, plain.Stats.PostingsTraversed)
	}
}

// TestBlockMaxEdgeCases mirrors the reference strategies' edge behaviour.
func TestBlockMaxEdgeCases(t *testing.T) {
	s := buildShard(t, 3, 500)
	for name, eval := range map[string]Evaluator{
		"maxscore-bm": MaxScoreBM,
		"wand-bm":     WANDBM,
	} {
		if r := eval(s, nil, 10); len(r.Hits) != 0 {
			t.Errorf("%s: nil query should return nothing", name)
		}
		if r := eval(s, []string{"zzzznope"}, 10); len(r.Hits) != 0 || r.Stats.TermsMatched != 0 {
			t.Errorf("%s: absent term should return nothing", name)
		}
		if r := eval(s, []string{"wa"}, 0); len(r.Hits) != 0 {
			t.Errorf("%s: k=0 should return nothing", name)
		}
	}
	if r := Eval(StrategyMaxScoreBM, s, []string{"wa"}, 5); len(r.Hits) == 0 {
		t.Error("Eval dispatch to maxscore-bm failed")
	}
	if r := Eval(StrategyWANDBM, s, []string{"wa"}, 5); len(r.Hits) == 0 {
		t.Error("Eval dispatch to wand-bm failed")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, st := range []Strategy{
		StrategyExhaustive, StrategyMaxScore, StrategyWAND,
		StrategyTAAT, StrategyMaxScoreBM, StrategyWANDBM,
	} {
		got, ok := ParseStrategy(st.String())
		if !ok || got != st {
			t.Errorf("ParseStrategy(%q) = %v, %v", st.String(), got, ok)
		}
	}
	if _, ok := ParseStrategy("nope"); ok {
		t.Error("ParseStrategy accepted an unknown name")
	}
	if StrategyMaxScoreBM.String() != "maxscore-bm" || StrategyWANDBM.String() != "wand-bm" {
		t.Error("block-max strategy names wrong")
	}
}

// TestCursorDecodeZeroAlloc: a cursor sweep over a packed term — every
// block decoded through the SIMD kernels into the cursor's scratch —
// must not allocate. This is the property that makes block-at-a-time
// decoding viable on the query hot path.
func TestCursorDecodeZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race runtime randomly drops sync.Pool items; pooled paths allocate")
	}
	s := buildShard(t, 9, 4000)
	ti, ok := s.Lookup("wa")
	if !ok || ti.NumBlocks() < 2 {
		t.Fatal("need a multi-block term")
	}
	var c cursor
	sink := uint64(0)
	if allocs := testing.AllocsPerRun(50, func() {
		c.ti, c.pos, c.bi = ti, 0, -1
		for !c.exhausted() {
			sink += uint64(c.doc()) + uint64(c.posting().TF)
			c.pos++
		}
	}); allocs != 0 {
		t.Errorf("cursor sweep allocates %v per run, want 0 (sink %d)", allocs, sink)
	}
	// Seeks — block binary search plus in-block scan — are also free.
	if allocs := testing.AllocsPerRun(50, func() {
		c.ti, c.pos, c.bi = ti, 0, -1
		for d := uint32(0); d < 4000; d += 97 {
			c.seek(d)
		}
	}); allocs != 0 {
		t.Errorf("cursor seeks allocate %v per run, want 0", allocs)
	}
}

// TestBlockMaxStrategiesAllocNoMoreThanReference: the skip machinery is
// overlay arithmetic on pooled cursors — it must not add a single
// steady-state allocation over the reference strategies.
func TestBlockMaxStrategiesAllocNoMoreThanReference(t *testing.T) {
	if race.Enabled {
		t.Skip("race runtime randomly drops sync.Pool items; pooled paths allocate")
	}
	s := buildShard(t, 9, 4000)
	q := []string{"wa", "wb", "wc"}
	// Warm the pools.
	MaxScore(s, q, 10)
	MaxScoreBM(s, q, 10)
	WAND(s, q, 10)
	WANDBM(s, q, 10)
	ms := testing.AllocsPerRun(50, func() { MaxScore(s, q, 10) })
	bm := testing.AllocsPerRun(50, func() { MaxScoreBM(s, q, 10) })
	if bm > ms {
		t.Errorf("maxscore-bm allocates %v per run, maxscore %v", bm, ms)
	}
	wd := testing.AllocsPerRun(50, func() { WAND(s, q, 10) })
	wb := testing.AllocsPerRun(50, func() { WANDBM(s, q, 10) })
	if wb > wd {
		t.Errorf("wand-bm allocates %v per run, wand %v", wb, wd)
	}
}

func TestStatsAddBlockFields(t *testing.T) {
	a := ExecStats{BlocksDecoded: 1, BlocksSkipped: 2}
	a.Add(ExecStats{BlocksDecoded: 10, BlocksSkipped: 20})
	if a.BlocksDecoded != 11 || a.BlocksSkipped != 22 {
		t.Errorf("Add dropped block fields: %+v", a)
	}
}

func BenchmarkMaxScoreBM(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaxScoreBM(s, q, 10)
	}
}

func BenchmarkWANDBM(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WANDBM(s, q, 10)
	}
}

// BenchmarkCursorSweep measures the raw block-decode throughput of a
// full cursor pass over the largest term — the SIMD unpack path with no
// scoring attached.
func BenchmarkCursorSweep(b *testing.B) {
	s := buildShard(b, 9, 10000)
	ti, ok := s.Lookup("wa")
	if !ok {
		b.Fatal("term missing")
	}
	var c cursor
	sink := uint64(0)
	b.SetBytes(int64(ti.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ti, c.pos, c.bi = ti, 0, -1
		for !c.exhausted() {
			sink += uint64(c.doc())
			c.pos++
		}
	}
	_ = sink
	_ = index.BlockSize
}
