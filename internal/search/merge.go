package search

import "sort"

// Merge combines per-shard hit lists into the global top-k, the
// aggregator's step-7 ranking. Ties on score break toward the smaller
// document ID so merged rankings are deterministic regardless of shard
// order.
func Merge(k int, lists ...[]Hit) []Hit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Hit, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	// Concrete sort.Interface rather than sort.Slice: the merge runs per
	// query on the aggregation path, and the reflection-based swapper is
	// measurable there. The comparator is a total order (collection-wide
	// doc IDs are unique), so the result is algorithm-independent.
	sort.Sort(byScoreDoc(all))
	if len(all) > k {
		all = all[:k]
	}
	return all
}

type byScoreDoc []Hit

func (h byScoreDoc) Len() int      { return len(h) }
func (h byScoreDoc) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h byScoreDoc) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score > h[j].Score
	}
	return h[i].Doc < h[j].Doc
}

// DocSet returns the set of document IDs in hits.
func DocSet(hits []Hit) map[int64]bool {
	s := make(map[int64]bool, len(hits))
	for _, h := range hits {
		s[h.Doc] = true
	}
	return s
}

// Overlap counts how many documents of hits appear in want.
func Overlap(hits []Hit, want map[int64]bool) int {
	n := 0
	for _, h := range hits {
		if want[h.Doc] {
			n++
		}
	}
	return n
}
