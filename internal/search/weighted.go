package search

import (
	"cottage/internal/index"
)

// WeightedTerm is a query term with a personalization weight, the
// extension the paper sketches as future work (Section III-B: "we will
// give personalized term-weights for each person based on the user
// profile"). A document's score is the weighted sum of its per-term BM25
// contributions. Weights must be positive; a weight of 1 reproduces the
// unweighted evaluators exactly.
type WeightedTerm struct {
	Text   string
	Weight float64
}

// Uniform wraps plain terms with weight 1.
func Uniform(terms []string) []WeightedTerm {
	out := make([]WeightedTerm, len(terms))
	for i, t := range terms {
		out[i] = WeightedTerm{Text: t, Weight: 1}
	}
	return out
}

// wcursor pairs a postings cursor with its term weight.
type wcursor struct {
	cursor
	weight float64
}

func openWeightedCursors(s *index.Shard, terms []WeightedTerm) []*wcursor {
	var cs []*wcursor
	seen := make(map[string]float64, len(terms))
	for _, t := range terms {
		if t.Weight <= 0 {
			panic("search: weighted term with non-positive weight")
		}
		// Duplicate terms accumulate weight, matching how a scorer would
		// fold repeated personalization signals.
		seen[t.Text] += t.Weight
	}
	// Deterministic order regardless of map iteration.
	uniq := make([]WeightedTerm, 0, len(seen))
	for _, t := range terms {
		if w, ok := seen[t.Text]; ok {
			uniq = append(uniq, WeightedTerm{Text: t.Text, Weight: w})
			delete(seen, t.Text)
		}
	}
	for _, t := range uniq {
		if ti, ok := s.Lookup(t.Text); ok {
			wc := &wcursor{weight: t.Weight}
			wc.ti, wc.bi = ti, -1
			cs = append(cs, wc)
		}
	}
	return cs
}

// canonicalWeightedScore recomputes a document's full weighted score in
// cursor order, so both weighted evaluators assign identical floats.
func canonicalWeightedScore(s *index.Shard, cs []*wcursor, doc uint32) float64 {
	var docs, tfs [index.BlockSize]uint32
	score := 0.0
	for _, c := range cs {
		if p, ok := findPosting(c.ti, doc, &docs, &tfs); ok {
			score += c.weight * s.TermScore(c.ti, p)
		}
	}
	return score
}

// ExhaustiveWeighted evaluates a weighted query with a full DAAT merge.
func ExhaustiveWeighted(s *index.Shard, terms []WeightedTerm, k int) Result {
	cs := openWeightedCursors(s, terms)
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	tk := newTopK(k)
	for {
		minDoc := uint32(0)
		live := false
		for _, c := range cs {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		score := 0.0
		for _, c := range cs {
			if !c.exhausted() && c.doc() == minDoc {
				score += c.weight * s.TermScore(c.ti, c.posting())
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		if tk.offer(minDoc, score) {
			st.HeapInserts++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}

// MaxScoreWeighted evaluates a weighted query with the MaxScore
// optimization; per-list upper bounds are weight × the term's max score.
func MaxScoreWeighted(s *index.Shard, terms []WeightedTerm, k int) Result {
	cs := openWeightedCursors(s, terms)
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}
	ub := func(c *wcursor) float64 { return c.weight * c.ti.Stats.MaxScore }
	// Insertion sort for the same per-query reflection-cost reason as
	// the unweighted evaluators (queries carry a handful of terms).
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i
		for j > 0 && ub(cs[j-1]) > ub(c) {
			cs[j] = cs[j-1]
			j--
		}
		cs[j] = c
	}
	m := len(cs)
	prefix := make([]float64, m)
	acc := 0.0
	for i, c := range cs {
		acc += ub(c)
		prefix[i] = acc
	}
	tk := newTopK(k)
	first := 0
	for first < m {
		minDoc := uint32(0)
		live := false
		for _, c := range cs[first:] {
			if c.exhausted() {
				continue
			}
			if !live || c.doc() < minDoc {
				minDoc = c.doc()
				live = true
			}
		}
		if !live {
			break
		}
		score := 0.0
		for _, c := range cs[first:] {
			if !c.exhausted() && c.doc() == minDoc {
				score += c.weight * s.TermScore(c.ti, c.posting())
				c.pos++
				st.PostingsTraversed++
			}
		}
		st.DocsScored++
		theta := tk.threshold()
		ok := true
		for j := first - 1; j >= 0; j-- {
			if score+prefix[j] <= theta {
				ok = false
				break
			}
			c := cs[j]
			if c.seek(minDoc) {
				score += c.weight * s.TermScore(c.ti, c.posting())
			}
			st.PostingsTraversed++
		}
		if ok && score > theta {
			if tk.offer(minDoc, canonicalWeightedScore(s, cs, minDoc)) {
				st.HeapInserts++
			}
		}
		theta = tk.threshold()
		for first < m && prefix[first] <= theta {
			first++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}
}
