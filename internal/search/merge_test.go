package search

import (
	"sort"
	"testing"

	"cottage/internal/xrand"
)

func randomHits(rng *xrand.RNG, n int) []Hit {
	hits := make([]Hit, n)
	for i := range hits {
		hits[i] = Hit{Doc: int64(rng.Intn(10000)), Score: rng.Float64() * 20}
	}
	return hits
}

func TestMergeBasics(t *testing.T) {
	a := []Hit{{Doc: 1, Score: 5}, {Doc: 2, Score: 3}}
	b := []Hit{{Doc: 3, Score: 4}}
	m := Merge(2, a, b)
	if len(m) != 2 || m[0].Doc != 1 || m[1].Doc != 3 {
		t.Fatalf("merge wrong: %v", m)
	}
	if len(Merge(10, a, b)) != 3 {
		t.Error("k larger than total should return everything")
	}
	if len(Merge(5)) != 0 {
		t.Error("no lists should merge to empty")
	}
	if len(Merge(0, a)) != 0 {
		t.Error("k=0 should be empty")
	}
}

func TestMergeSortedAndDeterministic(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 100; trial++ {
		lists := make([][]Hit, 1+rng.Intn(5))
		for i := range lists {
			lists[i] = randomHits(rng, rng.Intn(30))
		}
		k := 1 + rng.Intn(15)
		m := Merge(k, lists...)
		for i := 1; i < len(m); i++ {
			if m[i].Score > m[i-1].Score {
				t.Fatal("merge not sorted by score")
			}
			if m[i].Score == m[i-1].Score && m[i].Doc < m[i-1].Doc {
				t.Fatal("merge tie-break violated")
			}
		}
		// Order of input lists must not matter.
		rev := make([][]Hit, len(lists))
		for i := range lists {
			rev[i] = lists[len(lists)-1-i]
		}
		m2 := Merge(k, rev...)
		for i := range m {
			if m[i] != m2[i] {
				t.Fatal("merge depends on list order")
			}
		}
	}
}

func TestMergeEqualsGlobalSort(t *testing.T) {
	rng := xrand.New(10)
	lists := make([][]Hit, 4)
	var all []Hit
	for i := range lists {
		lists[i] = randomHits(rng, 50)
		all = append(all, lists[i]...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	m := Merge(10, lists...)
	for i := range m {
		if m[i] != all[i] {
			t.Fatalf("merge differs from global sort at %d", i)
		}
	}
}

func TestDocSetAndOverlap(t *testing.T) {
	hits := []Hit{{Doc: 1}, {Doc: 2}, {Doc: 3}}
	set := DocSet(hits)
	if len(set) != 3 || !set[2] {
		t.Fatal("DocSet wrong")
	}
	if Overlap([]Hit{{Doc: 2}, {Doc: 9}}, set) != 1 {
		t.Fatal("Overlap wrong")
	}
	if Overlap(nil, set) != 0 || Overlap(hits, nil) != 0 {
		t.Fatal("empty overlap wrong")
	}
}
