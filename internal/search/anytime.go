package search

import (
	"sync"

	"cottage/internal/index"
)

// Anytime ranking on a document-ordered index, after Mackenzie, Petri &
// Moffat: the shard's document space is tiled into ranges, each range's
// score upper bound is derived from the block-max overlay, and a DAAT
// merge visits ranges in descending-bound order so the highest-scoring
// regions are evaluated first. The traversal checks an injectable budget
// between ranges; when it fires, the best-so-far top-K is returned with a
// certificate bounding how much better the unseen remainder could be.
// Everything about the traversal is deterministic — range order, scoring
// order, tie-breaks — so the engine's simulated twin replays it exactly.

// Deadline is an injectable budget predicate: it is consulted between
// ranges with the work performed so far and returns true once the budget
// is exhausted. A nil Deadline never expires. The twin passes a
// cycle-budget closure over the cost model (virtual time); the live rpc
// server passes a wall-clock check.
type Deadline func(st ExecStats) bool

// anytimeRanges is how many document ranges the shard is tiled into: the
// granularity of both the priority order and the deadline check.
const anytimeRanges = 64

// anytimeScratch is the pooled per-evaluation workspace so steady-state
// Anytime evaluation allocates nothing beyond the shared cursor/topK
// machinery.
type anytimeScratch struct {
	termMax []float64
	bounds  []float64
	order   []int
}

var anytimePool = sync.Pool{New: func() any { return new(anytimeScratch) }}

func (sc *anytimeScratch) resize(n int) (termMax, bounds []float64, order []int) {
	if cap(sc.termMax) < n {
		sc.termMax = make([]float64, n)
		sc.bounds = make([]float64, n)
		sc.order = make([]int, n)
	}
	termMax, bounds, order = sc.termMax[:n], sc.bounds[:n], sc.order[:n]
	for i := 0; i < n; i++ {
		bounds[i] = 0
	}
	return termMax, bounds, order
}

// Anytime evaluates the query like Exhaustive but under a deadline: exact
// scoring, best-first over document ranges, early termination with a
// quality certificate. With a nil (infinite) deadline the result is
// bitwise-identical to Exhaustive — same documents, same score bits, same
// order — because ranges partition the document space, every candidate is
// scored in canonical slab order, and the top-K heap's final contents are
// insertion-order independent.
func Anytime(s *index.Shard, terms []string, k int, deadline Deadline) Result {
	set := openCursorSet(s, terms)
	defer set.put()
	cs := set.cs
	var st ExecStats
	st.TermsMatched = len(cs)
	if len(cs) == 0 || k <= 0 {
		return Result{Stats: st}
	}

	// Tile the document space into equal ranges and bound each range:
	// per term, the range's bound is the largest Max of any overlapping
	// block-max block; per range, term bounds are summed in slab order.
	// Floating-point addition of non-negative values is monotone in each
	// operand and a document's real score sums a subset of the same terms
	// in the same order (absent terms contribute an exact +0.0), so
	// bounds[r] >= score(d) holds bitwise for every document d in range r.
	width := (s.NumDocs + anytimeRanges - 1) / anytimeRanges
	nr := (s.NumDocs + width - 1) / width
	sc := anytimePool.Get().(*anytimeScratch)
	defer anytimePool.Put(sc)
	termMax, bounds, order := sc.resize(nr)
	for _, c := range cs { // cs is slab order here: Anytime never sorts it
		for i := range termMax {
			termMax[i] = 0
		}
		start := uint32(0)
		for _, blk := range c.ti.Blocks {
			rLo := int(start) / width
			rHi := int(blk.MaxDoc) / width
			for r := rLo; r <= rHi; r++ {
				if blk.Max > termMax[r] {
					termMax[r] = blk.Max
				}
			}
			start = blk.MaxDoc + 1
		}
		for r := range bounds {
			bounds[r] += termMax[r]
		}
	}

	// Priority order: descending bound, ties toward the lower range index.
	// Insertion sort keeps this allocation-free (nr <= 64).
	for i := range order {
		order[i] = i
	}
	for i := 1; i < nr; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j], order[j-1]
			if bounds[a] > bounds[b] || (bounds[a] == bounds[b] && a < b) {
				order[j], order[j-1] = b, a
			} else {
				break
			}
		}
	}

	tk := newTopK(k)
	terminated := false
	remBound := 0.0
	for _, r := range order {
		if bounds[r] < tk.threshold() {
			// No unvisited document can enter the top-K (strict <: an
			// exact tie could still displace a larger doc ID). Ranges are
			// in descending bound order, so the result is now exact.
			break
		}
		if deadline != nil && deadline(st) {
			terminated = true
			remBound = bounds[r] // the largest unvisited bound
			break
		}
		dLo := uint32(r * width)
		dHi := uint32(s.NumDocs)
		if hi := (r + 1) * width; hi < s.NumDocs {
			dHi = uint32(hi)
		}
		// Ranges are visited out of document order: reposition every
		// cursor at the range start (a seek counts as one traversal).
		for _, c := range cs {
			c.reposition(dLo)
			st.PostingsTraversed++
		}
		for {
			minDoc := uint32(0)
			live := false
			for _, c := range cs {
				if c.exhausted() || c.doc() >= dHi {
					continue
				}
				if !live || c.doc() < minDoc {
					minDoc = c.doc()
					live = true
				}
			}
			if !live {
				break
			}
			// Summing in cs (slab) order makes the score canonical.
			score := 0.0
			for _, c := range cs {
				if !c.exhausted() && c.doc() == minDoc {
					score += s.TermScore(c.ti, c.posting())
					c.pos++
					st.PostingsTraversed++
				}
			}
			st.DocsScored++
			if tk.offer(minDoc, score) {
				st.HeapInserts++
			}
		}
	}

	kth := 0.0
	if len(tk.h) == tk.k {
		kth = tk.h[0].Score
	}
	bound := kth
	if terminated && remBound > bound {
		bound = remBound
	}
	return Result{Hits: tk.hits(s), Stats: st, Terminated: terminated, ScoreBound: bound}
}
