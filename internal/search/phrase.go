package search

import (
	"errors"

	"cottage/internal/index"
)

// ErrNotPositional is returned when a phrase query hits a shard indexed
// without positions.
var ErrNotPositional = errors.New("search: phrase queries need a positional shard (index.Builder.EnablePositions)")

// Phrase evaluates an exact-phrase query: documents must contain the
// terms consecutively and in order. Matching documents score as the sum
// of their terms' BM25 contributions (a common choice; phrase-proximity
// boosts are orthogonal). The evaluator intersects postings
// document-at-a-time and verifies adjacency with a positional merge.
func Phrase(s *index.Shard, phrase []string, k int) (Result, error) {
	var st ExecStats
	if len(phrase) == 0 || k <= 0 {
		return Result{Stats: st}, nil
	}
	infos := make([]*index.TermInfo, len(phrase))
	for i, t := range phrase {
		ti, ok := s.Lookup(t)
		if !ok {
			// A missing term means no document can contain the phrase.
			return Result{Stats: st}, nil
		}
		if ti.Positions == nil {
			return Result{}, ErrNotPositional
		}
		infos[i] = ti
		st.TermsMatched++
	}

	// Conjunctive DAAT intersection, driven by the rarest term.
	rare := 0
	for i, ti := range infos {
		if ti.Stats.PostingLen < infos[rare].Stats.PostingLen {
			rare = i
		}
	}
	cursors := make([]cursor, len(infos)) // forward cursors per term
	for i := range cursors {
		cursors[i].ti, cursors[i].bi = infos[i], -1
	}
	tk := newTopK(k)
	rarePostings := infos[rare].AllPostings()
outer:
	for _, p := range rarePostings {
		doc := p.Doc
		// Locate doc in every other term's postings.
		offsets := make([]int, len(infos))
		for i := range infos {
			c := &cursors[i]
			match := c.seek(doc)
			st.PostingsTraversed++
			if c.exhausted() {
				break outer // some term is exhausted: no further phrase can match
			}
			if !match {
				continue outer
			}
			offsets[i] = c.pos
		}
		st.DocsScored++
		if !phraseInDoc(infos, offsets) {
			continue
		}
		score := 0.0
		for i := range infos {
			score += s.TermScore(infos[i], cursors[i].posting())
		}
		if tk.offer(doc, score) {
			st.HeapInserts++
		}
	}
	return Result{Hits: tk.hits(s), Stats: st}, nil
}

// phraseInDoc reports whether the terms occur consecutively: some
// position p of term 0 with p+1 in term 1's positions, p+2 in term 2's,
// and so on. Position lists are ascending, so each adjacency check is a
// linear merge.
func phraseInDoc(infos []*index.TermInfo, offsets []int) bool {
	first := infos[0].Positions[offsets[0]]
	for _, start := range first {
		ok := true
		for j := 1; j < len(infos); j++ {
			if !containsPos(infos[j].Positions[offsets[j]], start+uint32(j)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// containsPos binary-searches an ascending position list.
func containsPos(ps []uint32, want uint32) bool {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		if ps[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ps) && ps[lo] == want
}
