package search_test

import (
	"fmt"

	"cottage/internal/index"
	"cottage/internal/search"
)

func buildExampleShard() *index.Shard {
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.AddText(100, "go systems programming language")
	b.AddText(101, "distributed systems design")
	b.AddText(102, "go distributed search engine")
	b.AddText(103, "query evaluation in search engines")
	return b.Finalize()
}

// Example evaluates a query with MaxScore pruning and prints the top hits.
func Example() {
	shard := buildExampleShard()
	res := search.MaxScore(shard, []string{"distributed", "search"}, 3)
	for _, h := range res.Hits {
		fmt.Println("doc", h.Doc)
	}
	fmt.Println("docs scored:", res.Stats.DocsScored)
	// Output:
	// doc 102
	// doc 101
	// doc 103
	// docs scored: 3
}

// ExampleMerge combines per-shard results into a global top-K, the
// aggregator's final step.
func ExampleMerge() {
	a := []search.Hit{{Doc: 1, Score: 9}, {Doc: 2, Score: 4}}
	b := []search.Hit{{Doc: 3, Score: 7}}
	for _, h := range search.Merge(2, a, b) {
		fmt.Println(h.Doc, h.Score)
	}
	// Output:
	// 1 9
	// 3 7
}

// ExampleExhaustiveWeighted up-weights one term of a personalized query.
func ExampleExhaustiveWeighted() {
	shard := buildExampleShard()
	res := search.ExhaustiveWeighted(shard, []search.WeightedTerm{
		{Text: "go", Weight: 5},
		{Text: "search", Weight: 1},
	}, 1)
	fmt.Println("top doc:", res.Hits[0].Doc)
	// Output:
	// top doc: 102
}
