package search

import (
	"encoding/binary"
	"sync"
	"testing"

	"cottage/internal/index"
)

// fuzzShards caches the shards the fuzzer builds, keyed by seed: the
// fuzzer revisits the same few seeds thousands of times and shard
// construction dominates the iteration cost otherwise.
var fuzzShards sync.Map

// decodeAnytimeFuzz maps arbitrary bytes onto an anytime evaluation:
// shard seed, k, a pair of ordered posting budgets, and a term list
// (including absent terms). tools/gencorpus mirrors this layout when it
// writes the seed corpus — keep the two in sync.
//
//	data[0:8]   shard seed (LE, folded into a small space for cache hits)
//	data[8]     k = 1 + b%24
//	data[9:11]  budget1 (LE)
//	data[11:13] budget2 = budget1 + extra (LE)
//	data[13]    term count n = 1 + b%4
//	data[14:]   term indices, one byte each (0 => an absent term)
const anytimeFuzzHeader = 14

func decodeAnytimeFuzz(data []byte) (seed uint64, k, budget1, budget2 int, terms []string, ok bool) {
	if len(data) < anytimeFuzzHeader {
		return 0, 0, 0, 0, nil, false
	}
	seed = binary.LittleEndian.Uint64(data[0:8]) % 1024
	k = 1 + int(data[8])%24
	budget1 = int(binary.LittleEndian.Uint16(data[9:11]))
	budget2 = budget1 + int(binary.LittleEndian.Uint16(data[11:13]))
	n := 1 + int(data[13])%4
	terms = make([]string, 0, n)
	for i := 0; i < n; i++ {
		b := byte(0)
		if 14+i < len(data) {
			b = data[14+i]
		}
		if b == 0 {
			terms = append(terms, "absent-term")
		} else {
			terms = append(terms, term(int(b)%150))
		}
	}
	return seed, k, budget1, budget2, terms, true
}

// FuzzAnytimeDeadline drives Anytime with an arbitrary shard, query and
// deadline pair and checks the three guarantees no truncation point may
// break: no panic, no duplicate documents with every score exact, and
// monotone quality — a longer deadline never returns a worse top-K.
func FuzzAnytimeDeadline(f *testing.F) {
	f.Add([]byte("\x01\x00\x00\x00\x00\x00\x00\x00\x09\x10\x00\x40\x00\x02\x05\x0a"))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x2a\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\xff\x03\x01\x02\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seed, k, budget1, budget2, terms, ok := decodeAnytimeFuzz(data)
		if !ok {
			return
		}
		v, hit := fuzzShards.Load(seed)
		if !hit {
			v, _ = fuzzShards.LoadOrStore(seed, buildRandomShard(t, seed))
		}
		s := v.(*index.Shard)
		ex := Exhaustive(s, terms, k)
		trueKth := 0.0
		if len(ex.Hits) == k {
			trueKth = ex.Hits[k-1].Score
		}
		sums := make([]float64, 2)
		for bi, budget := range []int{budget1, budget2} {
			b := budget
			r := Anytime(s, terms, k, func(st ExecStats) bool {
				return st.PostingsTraversed >= b
			})
			seen := make(map[uint32]bool, len(r.Hits))
			for i, h := range r.Hits {
				if seen[h.Local] {
					t.Fatalf("budget %d: duplicate doc %d", b, h.Local)
				}
				seen[h.Local] = true
				if want := recomputeScore(s, terms, h.Local); h.Score != want {
					t.Fatalf("budget %d: doc %d score %v, exact %v", b, h.Local, h.Score, want)
				}
				if i > 0 && (h.Score > r.Hits[i-1].Score ||
					(h.Score == r.Hits[i-1].Score && h.Local < r.Hits[i-1].Local)) {
					t.Fatalf("budget %d: hits out of order at %d", b, i)
				}
				sums[bi] += h.Score
			}
			if r.ScoreBound < trueKth {
				t.Fatalf("budget %d: ScoreBound %v < true k-th %v", b, r.ScoreBound, trueKth)
			}
			if !r.Terminated && !hitsIdentical(r.Hits, ex.Hits) {
				t.Fatalf("budget %d: untruncated result differs from exhaustive", b)
			}
		}
		if sums[1] < sums[0] {
			t.Fatalf("quality regressed: budget %d scored %v, budget %d scored %v",
				budget1, sums[0], budget2, sums[1])
		}
	})
}
