package search

import (
	"math"
	"testing"

	"cottage/internal/index"
	"cottage/internal/race"
	"cottage/internal/xrand"
)

// buildRandomShard creates a small shard whose every dimension — document
// count, vocabulary size, document length, Zipf skew — is drawn from the
// seed, so a battery over many seeds covers single-posting terms, dense
// terms, shards smaller than one anytime range, and shards spanning many.
func buildRandomShard(tb testing.TB, seed uint64) *index.Shard {
	tb.Helper()
	rng := xrand.New(seed)
	docs := 10 + rng.Intn(400)
	vocab := 5 + rng.Intn(120)
	skew := 1.05 + float64(rng.Intn(100))/100
	b := index.NewBuilder(int(seed), index.DefaultBM25(), 10)
	zipf := xrand.NewZipf(rng, skew, vocab)
	for d := 0; d < docs; d++ {
		n := 3 + rng.Intn(60)
		terms := make(map[string]int)
		for i := 0; i < n; i++ {
			terms[term(zipf.Draw())]++
		}
		b.Add(int64(seed)<<20|int64(d), terms, n)
	}
	return b.Finalize()
}

// randomQuery draws 1-4 terms from the shard's plausible vocabulary,
// occasionally including absent or duplicate terms.
func randomQuery(rng *xrand.RNG) []string {
	n := 1 + rng.Intn(4)
	q := make([]string, n)
	for i := range q {
		switch r := rng.Intn(10); {
		case r == 0:
			q[i] = "absent-term"
		case r == 1 && i > 0:
			q[i] = q[i-1] // duplicate
		default:
			q[i] = term(rng.Intn(130))
		}
	}
	return q
}

// hitsIdentical demands bitwise equality: same documents, same score
// bits, same order. No tolerance.
func hitsIdentical(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnytimeInfiniteDeadlineDifferential is the battery's core claim:
// with an infinite deadline, Anytime is bitwise-identical — documents,
// score bits, order — to every other exact strategy, across 300+ random
// shards. Any floating-point reordering in the range traversal, any
// unsound block bound, any tie-break drift shows up here.
func TestAnytimeInfiniteDeadlineDifferential(t *testing.T) {
	rng := xrand.New(99)
	for seed := uint64(0); seed < 320; seed++ {
		s := buildRandomShard(t, seed)
		q := randomQuery(rng)
		k := 1 + rng.Intn(25)
		ex := Exhaustive(s, q, k)
		an := Anytime(s, q, k, nil)
		if an.Terminated {
			t.Fatalf("seed %d: infinite deadline terminated", seed)
		}
		if !hitsIdentical(ex.Hits, an.Hits) {
			t.Fatalf("seed %d: anytime differs from exhaustive for %v k=%d:\n ex=%v\n an=%v",
				seed, q, k, ex.Hits, an.Hits)
		}
		ms := MaxScore(s, q, k)
		wd := WAND(s, q, k)
		if !hitsIdentical(an.Hits, ms.Hits) {
			t.Fatalf("seed %d: anytime differs from maxscore for %v k=%d", seed, q, k)
		}
		if !hitsIdentical(an.Hits, wd.Hits) {
			t.Fatalf("seed %d: anytime differs from wand for %v k=%d", seed, q, k)
		}
		// The certificate of an exact result is the k-th returned score.
		wantBound := 0.0
		if len(an.Hits) == k {
			wantBound = an.Hits[k-1].Score
		}
		if an.ScoreBound != wantBound {
			t.Fatalf("seed %d: exact result has ScoreBound %v, want %v", seed, an.ScoreBound, wantBound)
		}
	}
}

// recomputeScore recalculates a document's exact score from the raw
// postings, independent of any cursor machinery.
func recomputeScore(s *index.Shard, terms []string, doc uint32) float64 {
	seen := make(map[string]bool)
	score := 0.0
	for _, text := range terms {
		if seen[text] {
			continue
		}
		seen[text] = true
		ti, ok := s.Lookup(text)
		if !ok {
			continue
		}
		ps := ti.AllPostings()
		i := index.Seek(ps, doc)
		if i < len(ps) && ps[i].Doc == doc {
			score += s.TermScore(ti, ps[i])
		}
	}
	return score
}

// TestAnytimeFiniteDeadlineProperties checks the contract under every
// possible truncation point: hits are exactly scored, free of duplicates,
// properly ordered, and ScoreBound upper-bounds the true k-th score.
func TestAnytimeFiniteDeadlineProperties(t *testing.T) {
	rng := xrand.New(7)
	for seed := uint64(500); seed < 560; seed++ {
		s := buildRandomShard(t, seed)
		q := randomQuery(rng)
		k := 1 + rng.Intn(15)
		ex := Exhaustive(s, q, k)
		trueKth := 0.0
		if len(ex.Hits) == k {
			trueKth = ex.Hits[k-1].Score
		}
		full := Anytime(s, q, k, nil).Stats.PostingsTraversed
		for budget := 0; budget <= full; budget += 1 + full/7 {
			b := budget
			r := Anytime(s, q, k, func(st ExecStats) bool {
				return st.PostingsTraversed >= b
			})
			seen := make(map[uint32]bool)
			for i, h := range r.Hits {
				if seen[h.Local] {
					t.Fatalf("seed %d budget %d: duplicate doc %d", seed, b, h.Local)
				}
				seen[h.Local] = true
				if want := recomputeScore(s, q, h.Local); h.Score != want {
					t.Fatalf("seed %d budget %d: doc %d score %v, exact %v", seed, b, h.Local, h.Score, want)
				}
				if i > 0 && (h.Score > r.Hits[i-1].Score ||
					(h.Score == r.Hits[i-1].Score && h.Local < r.Hits[i-1].Local)) {
					t.Fatalf("seed %d budget %d: hits out of order at %d", seed, b, i)
				}
			}
			if r.ScoreBound < trueKth {
				t.Fatalf("seed %d budget %d: ScoreBound %v < true k-th %v", seed, b, r.ScoreBound, trueKth)
			}
			if !r.Terminated && !hitsIdentical(r.Hits, ex.Hits) {
				t.Fatalf("seed %d budget %d: untruncated result differs from exhaustive", seed, b)
			}
		}
	}
}

// TestAnytimeMonotoneQuality: a longer deadline never yields a worse
// top-K. Quality is the sum of returned scores — ranges are visited
// best-bound-first, so every extra range can only add or improve hits.
func TestAnytimeMonotoneQuality(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 40; trial++ {
		s := buildRandomShard(t, 900+uint64(trial))
		q := randomQuery(rng)
		k := 1 + rng.Intn(12)
		full := Anytime(s, q, k, nil).Stats.PostingsTraversed
		prev := -1.0
		for budget := 0; budget <= full+1; budget += 1 + full/11 {
			b := budget
			r := Anytime(s, q, k, func(st ExecStats) bool {
				return st.PostingsTraversed >= b
			})
			sum := 0.0
			for _, h := range r.Hits {
				sum += h.Score
			}
			if sum < prev {
				t.Fatalf("trial %d: quality regressed from %v to %v at budget %d", trial, prev, sum, b)
			}
			prev = sum
		}
	}
}

// TestAnytimeEdgeCases mirrors the other strategies' edge behaviour.
func TestAnytimeEdgeCases(t *testing.T) {
	s := buildShard(t, 3, 500)
	if r := Anytime(s, nil, 10, nil); len(r.Hits) != 0 || r.Terminated {
		t.Error("nil query should return nothing")
	}
	if r := Anytime(s, []string{"zzzznope"}, 10, nil); len(r.Hits) != 0 || r.Stats.TermsMatched != 0 {
		t.Error("absent term should return nothing")
	}
	if r := Anytime(s, []string{"wa"}, 0, nil); len(r.Hits) != 0 {
		t.Error("k=0 should return nothing")
	}
	// A deadline that is already expired returns an empty truncated
	// result whose bound still covers the whole shard.
	ex := Exhaustive(s, []string{"wa", "wb"}, 5)
	r := Anytime(s, []string{"wa", "wb"}, 5, func(ExecStats) bool { return true })
	if !r.Terminated || len(r.Hits) != 0 {
		t.Errorf("expired deadline: Terminated=%v hits=%d", r.Terminated, len(r.Hits))
	}
	if len(ex.Hits) > 0 && r.ScoreBound < ex.Hits[0].Score {
		t.Errorf("expired deadline: bound %v below best score %v", r.ScoreBound, ex.Hits[0].Score)
	}
}

// TestAnytimeDeadlineConsultedBetweenRanges: the predicate sees
// monotonically growing stats and is never called after it fires.
func TestAnytimeDeadlineConsultedBetweenRanges(t *testing.T) {
	s := buildShard(t, 13, 2000)
	calls, fired := 0, false
	Anytime(s, []string{"wa", "wb"}, 10, func(st ExecStats) bool {
		if fired {
			t.Fatal("deadline consulted after it fired")
		}
		calls++
		fired = calls >= 3
		return fired
	})
	if !fired {
		t.Fatalf("deadline consulted only %d times", calls)
	}
}

// TestAnytimeSteadyStateAllocs: the anytime machinery — range bounds,
// priority order, scratch — is pooled, so a steady-state Anytime call
// allocates no more than Exhaustive does (cursor set, topK, hits slice).
func TestAnytimeSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race runtime randomly drops sync.Pool items; pooled paths allocate")
	}
	s := buildShard(t, 9, 4000)
	q := []string{"wa", "wb", "wc"}
	// Warm the pools.
	Anytime(s, q, 10, nil)
	Exhaustive(s, q, 10)
	noDeadline := func(ExecStats) bool { return false }
	anytime := testing.AllocsPerRun(50, func() { Anytime(s, q, 10, noDeadline) })
	exhaustive := testing.AllocsPerRun(50, func() { Exhaustive(s, q, 10) })
	if anytime > exhaustive {
		t.Errorf("Anytime allocates %v per run, Exhaustive %v: anytime scratch is not pooled", anytime, exhaustive)
	}
}

// TestAnytimePrunesLowBoundRanges: on a skewed shard the best-first
// order plus the threshold break must let Anytime finish exactly while
// traversing fewer postings than Exhaustive.
func TestAnytimePrunesLowBoundRanges(t *testing.T) {
	s := buildShard(t, 31, 8000)
	q := []string{"wa", "wdp"}
	ex := Exhaustive(s, q, 10)
	an := Anytime(s, q, 10, nil)
	if !hitsIdentical(ex.Hits, an.Hits) {
		t.Fatal("pruned anytime run must stay exact")
	}
	if an.Stats.PostingsTraversed >= ex.Stats.PostingsTraversed {
		t.Errorf("anytime traversed %d postings >= exhaustive %d",
			an.Stats.PostingsTraversed, ex.Stats.PostingsTraversed)
	}
	if math.IsNaN(an.ScoreBound) {
		t.Error("ScoreBound is NaN")
	}
}
