package search

import (
	"math"
	"sort"
	"testing"

	"cottage/internal/index"
	"cottage/internal/xrand"
)

// buildShard creates a moderately sized shard with Zipfian term usage so
// pruning has something to skip.
func buildShard(tb testing.TB, seed uint64, docs int) *index.Shard {
	tb.Helper()
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	rng := xrand.New(seed)
	vocabSize := 300
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = term(i)
	}
	zipf := xrand.NewZipf(rng, 1.1, vocabSize)
	for d := 0; d < docs; d++ {
		n := 20 + rng.Intn(120)
		terms := make(map[string]int)
		for i := 0; i < n; i++ {
			terms[vocab[zipf.Draw()]]++
		}
		b.Add(int64(d), terms, n)
	}
	return b.Finalize()
}

func term(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	s := ""
	for {
		s = string(letters[i%26]) + s
		i /= 26
		if i == 0 {
			return "w" + s
		}
	}
}

// scoreMultiset extracts the sorted score list of a result. Exact ties can
// legitimately resolve to different documents across strategies, so
// equivalence is checked on scores.
func scoreMultiset(r Result) []float64 {
	out := make([]float64, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.Score
	}
	sort.Float64s(out)
	return out
}

func sameScores(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func queries() [][]string {
	return [][]string{
		{"wa"},
		{"wb"},
		{"wz"},
		{"wa", "wb"},
		{"wa", "wkf"},
		{"wc", "wd", "we"},
		{"wa", "wb", "wc", "wd"},
		{"wdz", "wcv"},
		{"wa", "wa"},            // duplicate term
		{"missingterm"},         // absent
		{"wa", "missing", "wb"}, // partial match
	}
}

func TestStrategiesAgreeOnTopK(t *testing.T) {
	s := buildShard(t, 11, 3000)
	for _, q := range queries() {
		for _, k := range []int{1, 5, 10, 50} {
			ex := Exhaustive(s, q, k)
			ms := MaxScore(s, q, k)
			wd := WAND(s, q, k)
			if !sameScores(scoreMultiset(ex), scoreMultiset(ms), 1e-9) {
				t.Errorf("maxscore differs from exhaustive for %v k=%d:\n ex=%v\n ms=%v",
					q, k, scoreMultiset(ex), scoreMultiset(ms))
			}
			if !sameScores(scoreMultiset(ex), scoreMultiset(wd), 1e-9) {
				t.Errorf("wand differs from exhaustive for %v k=%d:\n ex=%v\n wd=%v",
					q, k, scoreMultiset(ex), scoreMultiset(wd))
			}
		}
	}
}

func TestStrategiesAgreeProperty(t *testing.T) {
	s := buildShard(t, 17, 2000)
	rng := xrand.New(23)
	for trial := 0; trial < 150; trial++ {
		nTerms := 1 + rng.Intn(4)
		q := make([]string, nTerms)
		for i := range q {
			q[i] = term(rng.Intn(300))
		}
		k := 1 + rng.Intn(20)
		ex := Exhaustive(s, q, k)
		ms := MaxScore(s, q, k)
		wd := WAND(s, q, k)
		if !sameScores(scoreMultiset(ex), scoreMultiset(ms), 1e-9) {
			t.Fatalf("trial %d: maxscore mismatch for %v k=%d", trial, q, k)
		}
		if !sameScores(scoreMultiset(ex), scoreMultiset(wd), 1e-9) {
			t.Fatalf("trial %d: wand mismatch for %v k=%d", trial, q, k)
		}
	}
}

func TestHitsSortedDescending(t *testing.T) {
	s := buildShard(t, 5, 1500)
	for _, strat := range []Strategy{StrategyExhaustive, StrategyMaxScore, StrategyWAND} {
		r := Eval(strat, s, []string{"wa", "wb", "wc"}, 20)
		for i := 1; i < len(r.Hits); i++ {
			if r.Hits[i].Score > r.Hits[i-1].Score {
				t.Fatalf("%v: hits not sorted", strat)
			}
			if r.Hits[i].Score == r.Hits[i-1].Score && r.Hits[i].Local < r.Hits[i-1].Local {
				t.Fatalf("%v: tie-break violated", strat)
			}
		}
	}
}

func TestScoresMatchRecomputation(t *testing.T) {
	s := buildShard(t, 7, 1000)
	q := []string{"wa", "wb", "wf"}
	r := MaxScore(s, q, 10)
	for _, h := range r.Hits {
		want := 0.0
		for _, text := range q {
			ti, ok := s.Lookup(text)
			if !ok {
				continue
			}
			ps := ti.AllPostings()
			i := index.Seek(ps, h.Local)
			if i < len(ps) && ps[i].Doc == h.Local {
				want += s.TermScore(ti, ps[i])
			}
		}
		if math.Abs(want-h.Score) > 1e-9 {
			t.Errorf("doc %d score %v, recomputed %v", h.Local, h.Score, want)
		}
	}
}

func TestPruningDoesLessWork(t *testing.T) {
	s := buildShard(t, 31, 8000)
	// A query mixing one very common and one rare term is where pruning
	// pays off: the common list is mostly skipped.
	q := []string{"wa", "wdp"}
	ex := Exhaustive(s, q, 10)
	ms := MaxScore(s, q, 10)
	wd := WAND(s, q, 10)
	if ms.Stats.PostingsTraversed >= ex.Stats.PostingsTraversed {
		t.Errorf("maxscore traversed %d >= exhaustive %d",
			ms.Stats.PostingsTraversed, ex.Stats.PostingsTraversed)
	}
	if wd.Stats.DocsScored >= ex.Stats.DocsScored {
		t.Errorf("wand scored %d >= exhaustive %d docs",
			wd.Stats.DocsScored, ex.Stats.DocsScored)
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	s := buildShard(t, 3, 500)
	if r := Exhaustive(s, nil, 10); len(r.Hits) != 0 {
		t.Error("nil query should return nothing")
	}
	if r := MaxScore(s, []string{"zzzznope"}, 10); len(r.Hits) != 0 || r.Stats.TermsMatched != 0 {
		t.Error("absent term should return nothing")
	}
	if r := WAND(s, []string{"wa"}, 0); len(r.Hits) != 0 {
		t.Error("k=0 should return nothing")
	}
	// K greater than matching docs: return all matches.
	ti, _ := s.Lookup("wdz")
	if ti != nil {
		r := Exhaustive(s, []string{"wdz"}, s.NumDocs*2)
		if len(r.Hits) != ti.Stats.PostingLen {
			t.Errorf("k>matches: got %d hits, want %d", len(r.Hits), ti.Stats.PostingLen)
		}
	}
}

func TestDuplicateTermsCollapse(t *testing.T) {
	s := buildShard(t, 3, 500)
	a := Exhaustive(s, []string{"wa"}, 10)
	b := Exhaustive(s, []string{"wa", "wa", "wa"}, 10)
	if !sameScores(scoreMultiset(a), scoreMultiset(b), 0) {
		t.Error("duplicate terms should not change scores")
	}
}

func TestExecStatsSane(t *testing.T) {
	s := buildShard(t, 3, 2000)
	r := Exhaustive(s, []string{"wa", "wb"}, 10)
	if r.Stats.DocsScored <= 0 || r.Stats.PostingsTraversed < r.Stats.DocsScored {
		t.Errorf("implausible stats: %+v", r.Stats)
	}
	ta, _ := s.Lookup("wa")
	tb, _ := s.Lookup("wb")
	if r.Stats.PostingsTraversed != ta.Stats.PostingLen+tb.Stats.PostingLen {
		t.Errorf("exhaustive must traverse every posting: got %d, want %d",
			r.Stats.PostingsTraversed, ta.Stats.PostingLen+tb.Stats.PostingLen)
	}
	if r.Stats.TermsMatched != 2 {
		t.Errorf("TermsMatched = %d", r.Stats.TermsMatched)
	}
}

func TestStatsAdd(t *testing.T) {
	a := ExecStats{PostingsTraversed: 1, DocsScored: 2, HeapInserts: 3, TermsMatched: 4}
	b := ExecStats{PostingsTraversed: 10, DocsScored: 20, HeapInserts: 30, TermsMatched: 40}
	a.Add(b)
	if a.PostingsTraversed != 11 || a.DocsScored != 22 || a.HeapInserts != 33 || a.TermsMatched != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyExhaustive.String() != "exhaustive" ||
		StrategyMaxScore.String() != "maxscore" ||
		StrategyWAND.String() != "wand" ||
		Strategy(99).String() != "unknown" {
		t.Error("Strategy.String wrong")
	}
}

func TestEvalPanicsOnUnknown(t *testing.T) {
	s := buildShard(t, 3, 100)
	defer func() {
		if recover() == nil {
			t.Error("Eval with unknown strategy should panic")
		}
	}()
	Eval(Strategy(42), s, []string{"wa"}, 5)
}

func BenchmarkExhaustive(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Exhaustive(s, q, 10)
	}
}

func BenchmarkMaxScore(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaxScore(s, q, 10)
	}
}

func BenchmarkWAND(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WAND(s, q, 10)
	}
}

func TestTAATAgreesWithDAAT(t *testing.T) {
	s := buildShard(t, 67, 2500)
	for _, q := range queries() {
		for _, k := range []int{1, 5, 10, 50} {
			ex := Exhaustive(s, q, k)
			ta := TAAT(s, q, k)
			if !sameScores(scoreMultiset(ex), scoreMultiset(ta), 1e-9) {
				t.Errorf("taat differs from exhaustive for %v k=%d", q, k)
			}
			// TAAT is exhaustive in work terms: every posting visited.
			if ta.Stats.PostingsTraversed != ex.Stats.PostingsTraversed {
				t.Errorf("taat traversed %d postings, exhaustive %d",
					ta.Stats.PostingsTraversed, ex.Stats.PostingsTraversed)
			}
			if ta.Stats.DocsScored != ex.Stats.DocsScored {
				t.Errorf("taat scored %d docs, exhaustive %d",
					ta.Stats.DocsScored, ex.Stats.DocsScored)
			}
		}
	}
	if StrategyTAAT.String() != "taat" {
		t.Error("strategy name wrong")
	}
	r := Eval(StrategyTAAT, s, []string{"wa"}, 5)
	if len(r.Hits) == 0 {
		t.Error("Eval dispatch to TAAT failed")
	}
}

func BenchmarkTAAT(b *testing.B) {
	s := buildShard(b, 9, 10000)
	q := []string{"wa", "wb", "wc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TAAT(s, q, 10)
	}
}

func TestTopKOfferZeroAlloc(t *testing.T) {
	// offer is the innermost call of every evaluation strategy; the slice
	// heap must never allocate after newTopK's single up-front make.
	tk := newTopK(10)
	if allocs := testing.AllocsPerRun(100, func() {
		for d := uint32(0); d < 64; d++ {
			tk.offer(d, float64(d%17)*1.25)
		}
	}); allocs != 0 {
		t.Errorf("topK.offer allocates %v per run, want 0", allocs)
	}
}
