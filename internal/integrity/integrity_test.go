package integrity

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cottage/internal/index"
	"cottage/internal/obs"
	"cottage/internal/xrand"
)

// buildShard makes a small multi-term, multi-block sealed shard.
func buildShard(t testing.TB, id int) *index.Shard {
	t.Helper()
	b := index.NewBuilder(id, index.DefaultBM25(), 10)
	rng := xrand.New(uint64(41 + id))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	zipf := xrand.NewZipf(rng, 1.0, len(vocab))
	for d := 0; d < 300; d++ {
		terms := make(map[string]int)
		n := 15 + rng.Intn(40)
		for i := 0; i < n; i++ {
			terms[vocab[zipf.Draw()]]++
		}
		b.Add(int64(5000+d), terms, n)
	}
	s := b.Finalize()
	if err := s.Validate(); err != nil {
		t.Fatalf("shard invalid: %v", err)
	}
	return s
}

// corruptOneBlock flips a posting in the first multi-block term and
// returns (term text, block index).
func corruptOneBlock(t testing.TB, s *index.Shard) (string, int) {
	t.Helper()
	for i := range s.Terms {
		ti := &s.Terms[i]
		if len(ti.Blocks) > 1 && len(ti.BlockData(1)) > 0 {
			ti.BlockData(1)[0] ^= 1
			s.ResetVerification()
			return ti.Text, 1
		}
	}
	t.Fatal("no multi-block term")
	return "", 0
}

func TestLedgerStateMachine(t *testing.T) {
	l := NewLedger(0)
	if l.State(3, 1) != Healthy || l.IsQuarantined(3, 1) {
		t.Fatal("fresh replica not healthy")
	}
	l.RecordMismatch(3, 1, 100, "query", "block 1")
	if !l.Quarantine(3, 1, 100, "block 1") {
		t.Fatal("first quarantine rejected")
	}
	if l.Quarantine(3, 1, 150, "again") {
		t.Fatal("double quarantine accepted")
	}
	if got := l.State(3, 1); got != Quarantined {
		t.Fatalf("state = %v, want quarantined", got)
	}
	// Repair that fails returns to quarantined; MTTR keeps counting
	// from the first detection.
	l.StartRepair(3, 1, 200)
	if got := l.State(3, 1); got != Repairing {
		t.Fatalf("state = %v, want repairing", got)
	}
	if !l.IsQuarantined(3, 1) {
		t.Fatal("repairing replica must still be out of service")
	}
	l.FailRepair(3, 1, 250, "peer down")
	if got := l.State(3, 1); got != Quarantined {
		t.Fatalf("state after failed repair = %v", got)
	}
	l.StartRepair(3, 1, 300)
	l.Readmit(3, 1, 600)
	if got := l.State(3, 1); got != Healthy {
		t.Fatalf("state after readmit = %v", got)
	}
	snap := l.Snapshot()
	if snap.Mismatches != 1 || snap.Quarantines != 1 || snap.Repairs != 1 {
		t.Fatalf("totals = %+v", snap)
	}
	if snap.MeanMTTRMS != 500 { // quarantined at 100, readmitted at 600
		t.Fatalf("MTTR = %d, want 500", snap.MeanMTTRMS)
	}
	if len(snap.Replicas) != 1 || snap.Replicas[0].State != Healthy || snap.Replicas[0].Repairs != 1 {
		t.Fatalf("replica status = %+v", snap.Replicas)
	}
	// Transition guards: out-of-order calls are no-ops.
	l.StartRepair(3, 1, 700) // healthy: no-op
	l.FailRepair(3, 1, 700, "x")
	l.Readmit(3, 1, 700)
	if got := l.Snapshot(); got.Repairs != 1 || l.State(3, 1) != Healthy {
		t.Fatalf("guards leaked transitions: %+v", got)
	}
}

func TestLedgerEventRingWraps(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 7; i++ {
		l.RecordMismatch(0, 0, int64(i), "scrub", fmt.Sprintf("e%d", i))
	}
	snap := l.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(snap.Events))
	}
	for i, ev := range snap.Events {
		if want := fmt.Sprintf("e%d", i+3); ev.Detail != want {
			t.Fatalf("event %d = %q, want %q (oldest-first)", i, ev.Detail, want)
		}
	}
	if snap.Mismatches != 7 {
		t.Fatalf("mismatch total %d survived the ring, want 7", snap.Mismatches)
	}
}

func TestScrubberPacing(t *testing.T) {
	s := buildShard(t, 1)
	sc := &Scrubber{BytesPerSec: 1000}
	// First step anchors the clock — nothing scrubbed.
	if res := sc.Step(s, 0); res.Scrubbed != 0 || res.Err != nil {
		t.Fatalf("anchor step scrubbed %d", res.Scrubbed)
	}
	// 1 second at 1000 B/s = 1000 bytes ≈ one 64-posting block (512 B)
	// plus change; strictly fewer blocks than the whole shard.
	res := sc.Step(s, 1000)
	if res.Scrubbed == 0 || res.Scrubbed >= s.TotalBlocks() {
		t.Fatalf("paced step scrubbed %d of %d blocks", res.Scrubbed, s.TotalBlocks())
	}
	// Enough elapsed time covers the full shard and wraps the epoch.
	total := int64(s.PostingBytes())
	sc.Step(s, 1000+total) // one full shard's worth of budget
	sc.Step(s, 2000+2*total)
	if sc.Epochs() == 0 {
		t.Fatalf("no epoch completed after %d bytes of budget", 2*total)
	}
	// Budget carry is capped: a huge idle gap can't scrub more than one
	// pass worth in a single step.
	before := sc.Epochs()
	res = sc.Step(s, 100_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if sc.Epochs() > before+2 {
		t.Fatalf("idle gap scrubbed %d epochs in one step", sc.Epochs()-before)
	}
}

func TestScrubberFindsRotAcrossEpochs(t *testing.T) {
	s := buildShard(t, 2)
	sc := &Scrubber{BytesPerSec: 64_000}
	sc.Step(s, 0)
	// Clean first pass.
	if res := sc.Step(s, sc.EpochMS(s)+1000); res.Err != nil {
		t.Fatalf("clean shard scrubbed dirty: %v", res.Err)
	}
	// Rot lands after the first pass; the next epoch must find it even
	// though every block was previously verified.
	term, block := corruptOneBlock(t, s)
	var found error
	now := sc.EpochMS(s) + 1000
	for i := 0; i < 100 && found == nil; i++ {
		now += 500
		if res := sc.Step(s, now); res.Err != nil {
			found = res.Err
		}
	}
	var ce *index.CorruptionError
	if !errors.As(found, &ce) {
		t.Fatalf("scrub missed post-verification rot: %v", found)
	}
	if ce.Term != term || ce.Block != block {
		t.Fatalf("mislocalized: %+v, want term %q block %d", ce, term, block)
	}
}

func TestScrubberDisabledAndNil(t *testing.T) {
	s := buildShard(t, 3)
	sc := &Scrubber{BytesPerSec: 0}
	if res := sc.Step(s, 1000); res.Scrubbed != 0 {
		t.Fatal("disabled scrubber scrubbed")
	}
	if sc.EpochMS(s) != 0 || sc.EpochMS(nil) != 0 {
		t.Fatal("disabled scrubber reports an epoch")
	}
	sc = &Scrubber{BytesPerSec: 1000}
	if res := sc.Step(nil, 1000); res.Scrubbed != 0 {
		t.Fatal("nil shard scrubbed")
	}
}

func TestManagerQueryGateQuarantines(t *testing.T) {
	s := buildShard(t, 4)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	m := NewManager(Config{ShardID: 4, Replica: 0, Metrics: met}, s)

	if m.Shard() != s || m.State() != Healthy {
		t.Fatal("healthy manager hides its shard")
	}
	if err := m.VerifyQuery([]string{"alpha"}, 10); err != nil {
		t.Fatalf("clean query gated: %v", err)
	}
	term, _ := corruptOneBlock(t, s)
	err := m.VerifyQuery([]string{term}, 20)
	if !index.IsCorruption(err) {
		t.Fatalf("gate missed corruption: %v", err)
	}
	if m.State() != Quarantined {
		t.Fatalf("state = %v, want quarantined", m.State())
	}
	if m.Shard() != nil {
		t.Fatal("quarantined manager still serves its shard")
	}
	// Quarantined replicas are not scrubbed.
	if n := m.ScrubStep(1000); n != 0 {
		t.Fatalf("quarantined replica scrubbed %d blocks", n)
	}
	if met.Mismatches.Value() != 1 || met.Quarantines.Value() != 1 {
		t.Fatalf("metrics: mismatches=%d quarantines=%d",
			met.Mismatches.Value(), met.Quarantines.Value())
	}
}

func TestManagerRepairReadmits(t *testing.T) {
	s := buildShard(t, 5)
	met := NewMetrics(obs.NewRegistry())
	fails := 1
	m := NewManager(Config{
		ShardID: 5, Replica: 1, ScrubBytesPerSec: 1 << 20, Metrics: met,
		Fetch: func() (*index.Shard, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("peer unavailable")
			}
			return buildShard(t, 5), nil
		},
	}, s)

	// Repair on a healthy replica is a no-op.
	if err := m.Repair(0, nil); err != nil {
		t.Fatalf("healthy repair: %v", err)
	}
	term, _ := corruptOneBlock(t, s)
	if err := m.VerifyQuery([]string{term}, 100); !index.IsCorruption(err) {
		t.Fatalf("corruption missed: %v", err)
	}
	// First attempt fails (peer down) — still quarantined.
	if err := m.Repair(200, nil); err == nil {
		t.Fatal("failed fetch reported success")
	}
	if m.State() != Quarantined || m.Shard() != nil {
		t.Fatal("failed repair re-admitted the replica")
	}
	// Second attempt succeeds: fresh shard swaps in, state is healthy,
	// scrubbing resumes, MTTR covers detection → readmission.
	if err := m.Repair(600, nil); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if m.State() != Healthy || m.Shard() == nil {
		t.Fatal("repair did not re-admit")
	}
	if err := m.VerifyQuery([]string{term}, 700); err != nil {
		t.Fatalf("repaired shard still gated: %v", err)
	}
	snap := m.Snapshot()
	if snap.Repairs != 1 || snap.MeanMTTRMS != 500 {
		t.Fatalf("repair accounting: %+v", snap)
	}
	if met.Repairs.Value() != 1 {
		t.Fatalf("repairs counter = %d", met.Repairs.Value())
	}
	if m.ScrubStep(1000) != 0 { // anchor
		t.Fatal("anchor step scrubbed")
	}
	if m.ScrubStep(2000) == 0 {
		t.Fatal("scrub did not resume after repair")
	}
}

func TestManagerRepairRejectsCorruptTransfer(t *testing.T) {
	s := buildShard(t, 6)
	m := NewManager(Config{ShardID: 6, Replica: 0}, s)
	term, _ := corruptOneBlock(t, s)
	if err := m.VerifyQuery([]string{term}, 10); !index.IsCorruption(err) {
		t.Fatalf("corruption missed: %v", err)
	}
	// The repair source itself hands back rotten bytes: re-validation
	// must reject them and the replica stays out of service.
	err := m.Repair(20, func() (*index.Shard, error) {
		bad := buildShard(t, 6)
		corruptOneBlock(t, bad)
		return bad, nil
	})
	if !index.IsCorruption(err) {
		t.Fatalf("corrupt transfer accepted: %v", err)
	}
	if m.State() != Quarantined {
		t.Fatalf("state = %v after corrupt transfer", m.State())
	}
	// No repair source configured at all: typed failure, still out.
	if err := m.Repair(30, nil); err == nil || !strings.Contains(err.Error(), "no repair source") {
		t.Fatalf("got %v, want no-repair-source error", err)
	}
}

func TestManagerScrubDetects(t *testing.T) {
	s := buildShard(t, 7)
	m := NewManager(Config{ShardID: 7, Replica: 0, ScrubBytesPerSec: 1 << 20}, s)
	m.ScrubStep(0) // anchor
	epoch := m.ScrubEpochMS()
	if epoch <= 0 {
		t.Fatalf("epoch = %d", epoch)
	}
	corruptOneBlock(t, s)
	now := int64(0)
	for i := 0; i < 200 && m.State() == Healthy; i++ {
		now += 100
		m.ScrubStep(now)
	}
	if m.State() != Quarantined {
		t.Fatal("scrub never found the rot")
	}
	ev := m.Snapshot().Events
	if len(ev) == 0 || ev[0].Source != "scrub" {
		t.Fatalf("detection not attributed to scrub: %+v", ev)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	l := NewLedger(0)
	l.RecordMismatch(2, 1, 50, "frame", "payload crc")
	l.Quarantine(2, 1, 50, "payload crc")
	h := Handler(l.Snapshot)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/integrity", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Quarantines != 1 || len(snap.Replicas) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !strings.Contains(rr.Body.String(), `"quarantined"`) {
		t.Fatal("state not rendered by name")
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{Healthy: "healthy", Quarantined: "quarantined",
		Repairing: "repairing", State(9): "state(9)"} {
		if st.String() != want {
			t.Fatalf("%d → %q, want %q", int(st), st.String(), want)
		}
	}
}

// TestRunLoopScrubsAndRepairs drives the wall-clock wrapper end to end:
// the loop's scrub finds planted rot, quarantines, and self-repairs.
func TestRunLoopScrubsAndRepairs(t *testing.T) {
	s := buildShard(t, 8)
	corruptOneBlock(t, s)
	m := NewManager(Config{
		ShardID: 8, Replica: 0, ScrubBytesPerSec: 64 << 20,
		Fetch: func() (*index.Shard, error) { return buildShard(t, 8), nil },
	}, s)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); m.RunLoop(stop, time.Millisecond) }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := m.Snapshot()
		if snap.Repairs >= 1 && m.State() == Healthy {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	snap := m.Snapshot()
	if snap.Quarantines != 1 || snap.Repairs < 1 || m.State() != Healthy {
		t.Fatalf("loop did not heal: %+v (state %v)", snap, m.State())
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.scrubbed(3)
	m.mismatch()
	m.quarantine()
	m.repair()
	if NewMetrics(nil) != nil {
		t.Fatal("NewMetrics(nil) registered counters")
	}
}
