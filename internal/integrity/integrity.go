// Package integrity is the quarantine/repair plane over the checksummed
// shard format (index wire v4). It supplies three cooperating pieces:
//
//   - Ledger: a corruption ledger — every detected mismatch becomes an
//     attributed event (which shard, which replica, detected where), and
//     per-replica state machines track healthy → quarantined → repairing
//     → healthy with MTTR accounting. The coordinator keeps one to rank
//     quarantined replicas out of selection; each ISN keeps one for its
//     own shard copy.
//   - Scrubber: a paced, pull-based background verifier. Step(nowMS)
//     checksums as many blocks as the elapsed time × bytes/sec budget
//     allows, so integrity checking never competes with query latency,
//     and the same code runs in wall-clock (a goroutine loop) and in the
//     twin's virtual time (deterministic across GOMAXPROCS).
//   - Manager: the per-ISN supervisor tying shard, scrubber, ledger and
//     metrics together: query-time verification gate, quarantine on any
//     mismatch, repair by re-fetching verified bytes (peer replica or
//     disk), re-validation, and re-admission.
//
// Detection without attribution is noise; the ledger makes every
// corruption actionable, and the manager makes it survivable.
package integrity

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"cottage/internal/obs"
)

// State is one replica-shard's position in the integrity state machine.
type State int

const (
	// Healthy replicas serve queries and are scrubbed in the background.
	Healthy State = iota
	// Quarantined replicas failed a checksum and serve nothing until
	// repaired. Selection ranks them below breaker-open replicas: a
	// replica known to lie is worse than one that might be dead.
	Quarantined
	// Repairing replicas are mid-transfer: fresh verified bytes are
	// being fetched from a healthy peer (or re-read from disk).
	Repairing
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Repairing:
		return "repairing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalJSON renders states by name in /debug/integrity output.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the same by-name encoding, so snapshot
// consumers (tests, tooling) can round-trip /debug/integrity payloads.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*s = Healthy
	case "quarantined":
		*s = Quarantined
	case "repairing":
		*s = Repairing
	default:
		return fmt.Errorf("integrity: unknown state %q", name)
	}
	return nil
}

// Event is one ledger entry: a detected corruption or a state
// transition, attributed and timestamped (virtual or wall ms).
type Event struct {
	TimeMS  int64 `json:"time_ms"`
	Shard   int   `json:"shard"`
	Replica int   `json:"replica"`
	// Source is where detection happened: "load", "query", "scrub",
	// "frame" (RPC payload CRC), or the transitions "quarantine",
	// "repair-start", "repair-done", "repair-failed".
	Source string `json:"source"`
	Detail string `json:"detail,omitempty"`
}

// replicaKey identifies one shard copy.
type replicaKey struct{ shard, replica int }

// replicaState is the per-copy state machine plus repair accounting.
type replicaState struct {
	state           State
	quarantinedAtMS int64
	repairs         int
	mttrTotalMS     int64
}

// ReplicaStatus is one replica's externally visible integrity state.
type ReplicaStatus struct {
	Shard           int   `json:"shard"`
	Replica         int   `json:"replica"`
	State           State `json:"state"`
	QuarantinedAtMS int64 `json:"quarantined_at_ms,omitempty"`
	Repairs         int   `json:"repairs"`
	MeanMTTRMS      int64 `json:"mean_mttr_ms"`
}

// Snapshot is the ledger's full externally visible state — the
// /debug/integrity payload.
type Snapshot struct {
	Replicas    []ReplicaStatus `json:"replicas"`
	Events      []Event         `json:"events"`
	Mismatches  uint64          `json:"mismatches"`
	Quarantines uint64          `json:"quarantines"`
	Repairs     uint64          `json:"repairs"`
	MeanMTTRMS  int64           `json:"mean_mttr_ms"`
}

// Ledger records detected corruptions and tracks each replica-shard's
// quarantine/repair state machine. Safe for concurrent use.
type Ledger struct {
	mu        sync.Mutex
	events    []Event // ring buffer, newest last
	maxEvents int
	next      int // ring cursor once full
	replicas  map[replicaKey]*replicaState

	mismatches  uint64
	quarantines uint64
	repairs     uint64
	mttrTotalMS int64

	// Metrics, when set, mirrors transitions onto registry counters.
	Metrics *Metrics
}

// NewLedger builds a ledger retaining the last maxEvents events
// (default 256 when <= 0).
func NewLedger(maxEvents int) *Ledger {
	if maxEvents <= 0 {
		maxEvents = 256
	}
	return &Ledger{maxEvents: maxEvents, replicas: make(map[replicaKey]*replicaState)}
}

func (l *Ledger) record(ev Event) {
	if len(l.events) < l.maxEvents {
		l.events = append(l.events, ev)
		return
	}
	l.events[l.next] = ev
	l.next = (l.next + 1) % l.maxEvents
}

func (l *Ledger) replica(shard, replica int) *replicaState {
	k := replicaKey{shard, replica}
	rs := l.replicas[k]
	if rs == nil {
		rs = &replicaState{}
		l.replicas[k] = rs
	}
	return rs
}

// RecordMismatch logs one detected corruption (it does not change
// state; callers decide whether the finding quarantines the replica).
func (l *Ledger) RecordMismatch(shard, replica int, nowMS int64, source, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mismatches++
	l.record(Event{TimeMS: nowMS, Shard: shard, Replica: replica, Source: source, Detail: detail})
	l.Metrics.mismatch()
}

// Quarantine moves a replica to Quarantined (idempotent: an already
// quarantined or repairing replica is left alone so MTTR measures the
// first detection to re-admission).
func (l *Ledger) Quarantine(shard, replica int, nowMS int64, detail string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replica(shard, replica)
	if rs.state != Healthy {
		return false
	}
	rs.state = Quarantined
	rs.quarantinedAtMS = nowMS
	l.quarantines++
	l.record(Event{TimeMS: nowMS, Shard: shard, Replica: replica, Source: "quarantine", Detail: detail})
	l.Metrics.quarantine()
	return true
}

// StartRepair marks a quarantined replica as mid-repair.
func (l *Ledger) StartRepair(shard, replica int, nowMS int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replica(shard, replica)
	if rs.state != Quarantined {
		return
	}
	rs.state = Repairing
	l.record(Event{TimeMS: nowMS, Shard: shard, Replica: replica, Source: "repair-start"})
}

// FailRepair returns a repairing replica to Quarantined (the fetch
// failed; the repair loop will retry).
func (l *Ledger) FailRepair(shard, replica int, nowMS int64, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replica(shard, replica)
	if rs.state != Repairing {
		return
	}
	rs.state = Quarantined
	l.record(Event{TimeMS: nowMS, Shard: shard, Replica: replica, Source: "repair-failed", Detail: detail})
}

// Readmit completes a repair: the replica returns to Healthy and the
// quarantine-to-readmission interval feeds MTTR.
func (l *Ledger) Readmit(shard, replica int, nowMS int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replica(shard, replica)
	if rs.state == Healthy {
		return
	}
	mttr := nowMS - rs.quarantinedAtMS
	if mttr < 0 {
		mttr = 0
	}
	rs.state = Healthy
	rs.repairs++
	rs.mttrTotalMS += mttr
	l.repairs++
	l.mttrTotalMS += mttr
	l.record(Event{TimeMS: nowMS, Shard: shard, Replica: replica, Source: "repair-done",
		Detail: fmt.Sprintf("mttr=%dms", mttr)})
	l.Metrics.repair()
}

// IsQuarantined reports whether a replica is out of service (either
// Quarantined or Repairing — it serves nothing until re-admitted).
func (l *Ledger) IsQuarantined(shard, replica int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replicas[replicaKey{shard, replica}]
	return rs != nil && rs.state != Healthy
}

// State returns a replica's current integrity state.
func (l *Ledger) State(shard, replica int) State {
	l.mu.Lock()
	defer l.mu.Unlock()
	rs := l.replicas[replicaKey{shard, replica}]
	if rs == nil {
		return Healthy
	}
	return rs.state
}

// Mismatches returns the count of detected corruptions so far.
func (l *Ledger) Mismatches() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mismatches
}

// Snapshot returns the full ledger state, events oldest-first.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := Snapshot{
		Mismatches:  l.mismatches,
		Quarantines: l.quarantines,
		Repairs:     l.repairs,
		Events:      make([]Event, 0, len(l.events)),
	}
	if l.repairs > 0 {
		snap.MeanMTTRMS = l.mttrTotalMS / int64(l.repairs)
	}
	// Ring order: next..end is the oldest run once wrapped.
	if len(l.events) == l.maxEvents {
		snap.Events = append(snap.Events, l.events[l.next:]...)
		snap.Events = append(snap.Events, l.events[:l.next]...)
	} else {
		snap.Events = append(snap.Events, l.events...)
	}
	for k, rs := range l.replicas {
		st := ReplicaStatus{Shard: k.shard, Replica: k.replica, State: rs.state, Repairs: rs.repairs}
		if rs.state != Healthy {
			st.QuarantinedAtMS = rs.quarantinedAtMS
		}
		if rs.repairs > 0 {
			st.MeanMTTRMS = rs.mttrTotalMS / int64(rs.repairs)
		}
		snap.Replicas = append(snap.Replicas, st)
	}
	sort.Slice(snap.Replicas, func(i, j int) bool {
		a, b := snap.Replicas[i], snap.Replicas[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Replica < b.Replica
	})
	return snap
}

// Metrics are the integrity plane's registry counters. All methods are
// nil-safe so wiring them up is optional everywhere.
type Metrics struct {
	ScrubbedBlocks *obs.Counter
	Mismatches     *obs.Counter
	Quarantines    *obs.Counter
	Repairs        *obs.Counter
}

// NewMetrics registers the integrity counters on reg.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		ScrubbedBlocks: reg.Counter("cottage_integrity_scrubbed_blocks_total",
			"Posting blocks re-checksummed by the background scrubber.", labels...),
		Mismatches: reg.Counter("cottage_integrity_mismatches_total",
			"Checksum mismatches detected (load, query, scrub, or RPC frame).", labels...),
		Quarantines: reg.Counter("cottage_integrity_quarantines_total",
			"Shard replicas quarantined after a detected corruption.", labels...),
		Repairs: reg.Counter("cottage_integrity_repairs_total",
			"Quarantined replicas repaired and re-admitted.", labels...),
	}
}

func (m *Metrics) scrubbed(n int) {
	if m != nil && m.ScrubbedBlocks != nil && n > 0 {
		m.ScrubbedBlocks.Add(uint64(n))
	}
}
func (m *Metrics) mismatch() {
	if m != nil && m.Mismatches != nil {
		m.Mismatches.Inc()
	}
}
func (m *Metrics) quarantine() {
	if m != nil && m.Quarantines != nil {
		m.Quarantines.Inc()
	}
}
func (m *Metrics) repair() {
	if m != nil && m.Repairs != nil {
		m.Repairs.Inc()
	}
}

// Handler serves a ledger snapshot as JSON — the /debug/integrity
// endpoint (mount via obs.Endpoint on the debug mux).
func Handler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
}

// detailOf extracts a compact detail string from a verification error
// for ledger entries.
func detailOf(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
