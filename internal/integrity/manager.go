package integrity

import (
	"fmt"
	"sync"
	"time"

	"cottage/internal/index"
)

// Config parameterizes a Manager.
type Config struct {
	// ShardID / Replica attribute this copy in ledger events.
	ShardID int
	Replica int
	// ScrubBytesPerSec paces the background scrubber (<= 0 disables).
	ScrubBytesPerSec int
	// MaxEvents bounds the ledger ring (default 256).
	MaxEvents int
	// Metrics, when set, mirrors detections and transitions onto the
	// registry counters.
	Metrics *Metrics
	// Fetch, when set, is the repair source: it returns a fresh,
	// fully verified shard object (peer-replica transfer or a disk
	// re-read). Called by Repair / the scrub loop while quarantined.
	Fetch func() (*index.Shard, error)
}

// Manager supervises one ISN's shard copy: it gates queries on lazy
// checksum verification, paces the background scrubber, quarantines the
// replica on any detected mismatch, and repairs by swapping in freshly
// fetched verified bytes. All methods are safe for concurrent use; the
// query path costs one mutex acquisition for the shard pointer plus the
// shard's own lock-free block verification.
type Manager struct {
	cfg    Config
	ledger *Ledger

	mu    sync.Mutex
	shard *index.Shard
	scrub Scrubber
}

// NewManager supervises s under cfg. The shard should already be
// sealed (Finalize or a v4/v3 load both seal).
func NewManager(cfg Config, s *index.Shard) *Manager {
	l := NewLedger(cfg.MaxEvents)
	l.Metrics = cfg.Metrics
	m := &Manager{cfg: cfg, ledger: l, shard: s}
	m.scrub.BytesPerSec = cfg.ScrubBytesPerSec
	return m
}

// Ledger exposes the manager's corruption ledger (snapshotting, debug).
func (m *Manager) Ledger() *Ledger { return m.ledger }

// Shard returns the serving shard, or nil while the replica is
// quarantined or repairing — callers must answer "unavailable", never
// serve from a copy that failed a checksum.
func (m *Manager) Shard() *index.Shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ledger.IsQuarantined(m.cfg.ShardID, m.cfg.Replica) {
		return nil
	}
	return m.shard
}

// State reports the replica's integrity state.
func (m *Manager) State() State { return m.ledger.State(m.cfg.ShardID, m.cfg.Replica) }

// VerifyQuery is the query-time integrity gate: it lazily verifies
// every block of every query term and, on a mismatch, records the
// event and quarantines the replica. The error returned is the
// localized corruption — the server maps it to a typed corrupt
// response so the coordinator retries a sibling.
func (m *Manager) VerifyQuery(terms []string, nowMS int64) error {
	m.mu.Lock()
	s := m.shard
	m.mu.Unlock()
	if s == nil {
		return nil
	}
	err := s.VerifyQuery(terms)
	if err == nil {
		return nil
	}
	if index.IsCorruption(err) {
		m.Quarantine(nowMS, "query", err)
	}
	return err
}

// Quarantine takes the replica out of service for an externally
// detected integrity failure (e.g. a typed decode error on load, or an
// operator action). Idempotent.
func (m *Manager) Quarantine(nowMS int64, source string, err error) {
	m.ledger.RecordMismatch(m.cfg.ShardID, m.cfg.Replica, nowMS, source, detailOf(err))
	m.ledger.Quarantine(m.cfg.ShardID, m.cfg.Replica, nowMS, detailOf(err))
}

// ScrubStep advances the background scrub to nowMS; a mismatch found
// by the scrubber quarantines the replica exactly like a query-time
// detection. Returns blocks scrubbed this step.
func (m *Manager) ScrubStep(nowMS int64) int {
	m.mu.Lock()
	s := m.shard
	quarantined := m.ledger.IsQuarantined(m.cfg.ShardID, m.cfg.Replica)
	if s == nil || quarantined {
		m.mu.Unlock()
		return 0
	}
	res := m.scrub.Step(s, nowMS)
	m.mu.Unlock()
	m.cfg.Metrics.scrubbed(res.Scrubbed)
	if res.Err != nil && index.IsCorruption(res.Err) {
		m.Quarantine(nowMS, "scrub", res.Err)
	}
	return res.Scrubbed
}

// ScrubEpochMS reports one full scrub pass's duration at the configured
// pace (0 = scrubbing disabled).
func (m *Manager) ScrubEpochMS() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scrub.EpochMS(m.shard)
}

// Repair fetches fresh verified shard bytes via cfg.Fetch (or the
// explicit fetch argument when non-nil), re-validates them, and swaps
// the new shard in, re-admitting the replica. No-op when healthy.
func (m *Manager) Repair(nowMS int64, fetch func() (*index.Shard, error)) error {
	if !m.ledger.IsQuarantined(m.cfg.ShardID, m.cfg.Replica) {
		return nil
	}
	if fetch == nil {
		fetch = m.cfg.Fetch
	}
	if fetch == nil {
		return fmt.Errorf("integrity: shard %d replica %d quarantined with no repair source",
			m.cfg.ShardID, m.cfg.Replica)
	}
	m.ledger.StartRepair(m.cfg.ShardID, m.cfg.Replica, nowMS)
	fresh, err := fetch()
	if err == nil && fresh == nil {
		err = fmt.Errorf("integrity: repair fetch returned no shard")
	}
	if err == nil {
		// Trust nothing: the transferred bytes must verify end to end
		// before this replica serves again.
		err = fresh.Validate()
	}
	if err != nil {
		m.ledger.FailRepair(m.cfg.ShardID, m.cfg.Replica, nowMS, detailOf(err))
		return err
	}
	m.mu.Lock()
	m.shard = fresh
	m.scrub.Reset()
	m.mu.Unlock()
	m.ledger.Readmit(m.cfg.ShardID, m.cfg.Replica, nowMS)
	return nil
}

// Snapshot returns the ledger snapshot plus live scrub progress.
func (m *Manager) Snapshot() Snapshot { return m.ledger.Snapshot() }

// RunLoop drives the manager on a wall-clock ticker until stop closes:
// each tick advances the scrub and, while quarantined, attempts a
// repair. This is the live-path wrapper around the same Step/Repair
// calls the twin drives in virtual time.
func (m *Manager) RunLoop(stop <-chan struct{}, tick time.Duration) {
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			nowMS := now.UnixMilli()
			m.ScrubStep(nowMS)
			if m.ledger.IsQuarantined(m.cfg.ShardID, m.cfg.Replica) {
				_ = m.Repair(nowMS, nil) // failures stay quarantined; retried next tick
			}
		}
	}
}
