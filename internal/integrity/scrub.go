package integrity

import (
	"cottage/internal/index"
)

// Scrubber walks a shard's posting blocks at a paced byte budget,
// re-checksumming each against its sealed CRC. It is pull-based: the
// owner calls Step with the current time (wall or virtual milliseconds)
// and the scrubber verifies however many blocks the elapsed-time ×
// bytes/sec budget covers. That inversion keeps the scrubber
// deterministic — the twin drives it in virtual time and gets identical
// behavior at GOMAXPROCS=1 and 8 — and keeps it cheap: a 2 MB shard
// scrubbed at 64 KB/s costs ~32 s per pass and never contends with a
// query for more than one block's CRC.
type Scrubber struct {
	// BytesPerSec is the pacing budget. <= 0 disables scrubbing
	// entirely (Step becomes a no-op).
	BytesPerSec int

	cursor  int     // next global block to verify
	lastMS  int64   // time of the previous Step
	started bool    // lastMS is valid
	carry   float64 // unspent byte budget carried between Steps
	epochs  int     // completed full passes
}

// StepResult summarizes one Step call.
type StepResult struct {
	// Scrubbed is how many blocks were verified this Step.
	Scrubbed int
	// Err is the first corruption found, nil when the pass was clean.
	// Scrubbing stops at the first mismatch — the owner quarantines the
	// whole replica, so localizing more blocks buys nothing.
	Err error
}

// Reset rewinds the scrubber for a fresh shard (after repair swaps the
// shard object, block indices and totals change).
func (sc *Scrubber) Reset() {
	sc.cursor = 0
	sc.carry = 0
	sc.started = false
	sc.epochs = 0
}

// Epochs reports completed full passes over the shard.
func (sc *Scrubber) Epochs() int { return sc.epochs }

// Cursor reports the next global block index to be verified.
func (sc *Scrubber) Cursor() int { return sc.cursor }

// EpochMS returns how long one full pass over s takes at the configured
// pace, in milliseconds (0 when scrubbing is disabled or s is empty) —
// the scrub-pace half of the detection-latency bound: an at-rest flip
// is found at worst one epoch after it lands, sooner if a query
// touches the block first.
func (sc *Scrubber) EpochMS(s *index.Shard) int64 {
	if sc.BytesPerSec <= 0 || s == nil {
		return 0
	}
	return int64(s.PostingBytes()) * 1000 / int64(sc.BytesPerSec)
}

// Step advances the scrub over s to nowMS. The first call only anchors
// the clock; later calls verify floor(elapsed × BytesPerSec) bytes'
// worth of blocks, carrying any remainder. Completing a pass resets the
// shard's verification memo (see index.ResetVerification) so the next
// epoch re-checksums from scratch instead of trusting stale verdicts.
func (sc *Scrubber) Step(s *index.Shard, nowMS int64) StepResult {
	var res StepResult
	if sc.BytesPerSec <= 0 || s == nil || !s.HasChecksums() || s.TotalBlocks() == 0 {
		return res
	}
	if !sc.started {
		sc.started = true
		sc.lastMS = nowMS
		return res
	}
	elapsed := nowMS - sc.lastMS
	if elapsed < 0 {
		elapsed = 0
	}
	sc.lastMS = nowMS
	sc.carry += float64(elapsed) * float64(sc.BytesPerSec) / 1000.0
	// Cap the carry at one full pass: after a long idle gap one Step
	// should scrub at most the whole shard, not spin repeatedly.
	if max := float64(s.PostingBytes()); sc.carry > max && max > 0 {
		sc.carry = max
	}
	total := s.TotalBlocks()
	if sc.cursor >= total {
		sc.cursor = 0
	}
	for {
		cost := float64(s.BlockBytes(sc.cursor))
		if cost < 8 {
			cost = 8 // empty/degenerate blocks still cost one posting
		}
		if sc.carry < cost {
			return res
		}
		sc.carry -= cost
		if err := s.VerifyBlockAt(sc.cursor); err != nil {
			res.Err = err
			res.Scrubbed++
			return res
		}
		res.Scrubbed++
		sc.cursor++
		if sc.cursor == total {
			sc.cursor = 0
			sc.epochs++
			s.ResetVerification()
		}
	}
}
