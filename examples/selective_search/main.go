// Selective search comparison: a miniature of the paper's Figs. 10-14.
// Builds the quick experimental setup and replays the Wikipedia-like and
// Lucene-like traces under all five headline policies, printing the
// latency / quality / ISN / power comparison tables.
package main

import (
	"log"
	"os"

	"cottage/internal/harness"
)

func main() {
	log.SetFlags(0)
	cfg := harness.QuickSetupConfig()
	// Trim further so the example finishes fast; orderings still hold.
	cfg.CorpusCfg.NumDocs = 6000
	cfg.CorpusCfg.VocabSize = 6000
	cfg.TrainQueries = 600
	cfg.EvalQueries = 800

	log.Println("building setup (corpus, shards, predictors, traces)...")
	s, err := harness.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Println("replaying both traces under every policy...")
	c := s.RunComparison(s.Policies())
	harness.RenderComparison(os.Stdout, c)
}
