// Distributed deployment demo: the coordination protocol on real TCP
// sockets. Spins up four in-process ISN servers on localhost, trains
// their predictors, then runs queries through both the exhaustive and the
// Cottage protocol via the wire aggregator, reporting wall-clock latency
// and result overlap.
//
// (For separate processes, use cmd/cottage-indexer, cmd/cottage-server
// and cmd/cottage-client — this example keeps everything in one binary so
// it runs with `go run`.)
package main

import (
	"fmt"
	"log"
	"net"
	"strings"

	"cottage/internal/cluster"
	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/rpc"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

func main() {
	log.SetFlags(0)

	// Build 4 shards and train their predictors.
	corpusCfg := textgen.DefaultConfig()
	corpusCfg.NumDocs = 4000
	corpusCfg.VocabSize = 4000
	corpusCfg.NumTopics = 16
	corpus := textgen.Generate(corpusCfg)
	alloc := corpus.AllocateTopical(4, 2, 0.15, 1)
	shards := make([]*index.Shard, len(alloc))
	for si, ids := range alloc {
		b := index.NewBuilder(si, index.DefaultBM25(), 10)
		for _, id := range ids {
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	}
	queries := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 4, NumQueries: 400, QPS: 50})
	log.Println("training per-ISN predictors...")
	ds := predict.Harvest(shards, queries[:300], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	pcfg := predict.DefaultConfig(10)
	pcfg.QualitySteps = 200
	pcfg.LatencySteps = 100
	fleet, err := predict.Train(ds, pcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Launch one TCP server per ISN and dial them.
	clients := make([]*rpc.Client, len(shards))
	for i, sh := range shards {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		srv := &rpc.Server{Shard: sh, Pred: fleet.Predictors[i], Strategy: search.StrategyMaxScore}
		go srv.Serve(l)
		c, err := rpc.Dial(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		log.Printf("ISN %d serving on %s (%d docs)", i, l.Addr(), sh.NumDocs)
	}

	agg := rpc.NewAggregator(clients, 10)
	fmt.Printf("\n%-32s %8s %8s %8s %9s\n", "query", "exh us", "cot us", "ISNs", "overlap")
	var sumOverlap float64
	n := 0
	for _, q := range queries[300:330] {
		exh, err := agg.SearchExhaustive(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		cot, err := agg.SearchCottage(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		overlap := 1.0
		if len(exh.Hits) > 0 {
			overlap = float64(search.Overlap(cot.Hits, search.DocSet(exh.Hits))) / float64(len(exh.Hits))
		}
		sumOverlap += overlap
		n++
		fmt.Printf("%-32s %8d %8d %8d %9.2f\n",
			strings.Join(q.Terms, " "), exh.Elapsed.Microseconds(), cot.Elapsed.Microseconds(),
			len(cot.Selected), overlap)
	}
	fmt.Printf("\nmean overlap with exhaustive top-10: %.3f over %d queries\n", sumOverlap/float64(n), n)
}
