// Power and time budget walkthrough: the paper's Fig. 9 example in code.
// Constructs a hand-crafted set of per-ISN quality/latency reports, runs
// Algorithm 1, and shows how the budget, cutoffs, frequency boosting and
// slack downclocking interact — then prices each assignment with the
// package power model.
package main

import (
	"fmt"

	"cottage/internal/cluster"
	"cottage/internal/core"
	"cottage/internal/power"
)

// isn builds a report from service time at the default frequency.
func isn(id, qk, qk2 int, serviceMS float64, ladder cluster.Ladder) core.ISNReport {
	cycles := serviceMS * ladder.Default() * 1e6
	return core.ISNReport{
		ISN: id, QK: qk, QK2: qk2,
		HasK: qk > 0, HasK2: qk2 > 0, ExpQK: float64(qk),
		LCurrent:   serviceMS,
		LBoosted:   cluster.ServiceMS(cycles, ladder.Max()),
		PredCycles: cycles,
	}
}

func main() {
	ladder := cluster.DefaultLadder()
	model := power.Default()

	// The paper's Fig. 9 shape (K=20): ISN-7 is slowest but contributes
	// nothing to the top-K/2; ISN-1 and ISN-13 are slow but essential;
	// the rest are fast with varying quality.
	reports := []core.ISNReport{
		isn(7, 1, 0, 27, ladder),
		isn(1, 2, 1, 24, ladder),
		isn(13, 3, 2, 21, ladder),
		isn(2, 4, 3, 9, ladder),
		isn(6, 2, 1, 8, ladder),
		isn(5, 1, 1, 7, ladder),
		isn(15, 1, 0, 6, ladder),
		isn(3, 2, 1, 4, ladder),
		isn(8, 1, 0, 3, ladder),
		isn(4, 0, 0, 12, ladder), // zero quality: cut in stage 1
		isn(9, 0, 0, 2, ladder),
	}

	res := core.DetermineBudget(reports, ladder, core.BudgetOptions{Downclock: true})
	fmt.Printf("time budget T = %.2f ms\n", res.BudgetMS)
	fmt.Printf("cut ISNs: %v\n\n", res.Cut)
	fmt.Printf("%-5s %-10s %-12s %14s %14s\n", "ISN", "freq GHz", "mode", "finish ms", "energy mJ")
	for _, a := range res.Selected {
		var rep core.ISNReport
		for _, r := range reports {
			if r.ISN == a.ISN {
				rep = r
			}
		}
		finish := cluster.ServiceMS(rep.PredCycles, a.Freq)
		energy := model.BusyEnergyMJ(a.Freq, finish)
		mode := "default"
		if a.Boosted {
			mode = "boosted"
		}
		if a.Downclocked {
			mode = "downclocked"
		}
		fmt.Printf("%-5d %-10.1f %-12s %14.2f %14.1f\n", a.ISN, a.Freq, mode, finish, energy)
	}

	// Contrast: the same workload without the K/2 relaxation keeps ISN-7
	// and the budget balloons.
	strict := core.DetermineBudget(reports, ladder, core.BudgetOptions{StrictTopK: true, Downclock: true})
	fmt.Printf("\nwithout the K/2 relaxation the budget would be %.2f ms (%.1f%% longer)\n",
		strict.BudgetMS, 100*(strict.BudgetMS-res.BudgetMS)/res.BudgetMS)

	// And without boosting, every slow contributor would miss the same
	// budget at the default frequency.
	late := 0
	for _, r := range reports {
		if r.HasK && r.LCurrent > res.BudgetMS && r.LBoosted <= res.BudgetMS {
			late++
		}
	}
	fmt.Printf("frequency boosting rescues %d slow high-quality ISNs at this budget\n", late)
}
