// Quickstart: build a small sharded search engine, train Cottage's
// predictors, and compare exhaustive search against the coordinated
// time-budget policy — in about eighty lines.
package main

import (
	"fmt"
	"log"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/predict"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize a corpus and shard it topically across 8 ISNs.
	corpusCfg := textgen.DefaultConfig()
	corpusCfg.NumDocs = 6000
	corpusCfg.VocabSize = 6000
	corpus := textgen.Generate(corpusCfg)

	engCfg := engine.DefaultConfig()
	engCfg.NumShards = 8
	shards := engine.BuildShards(corpus, engCfg, 2, 0.15, 1)
	eng := engine.New(shards, engCfg)

	// 2. Train the per-ISN quality and latency predictors on a training
	//    trace (ground truth is harvested by exhaustive evaluation).
	train := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 1, NumQueries: 600, QPS: 30})
	pcfg := predict.DefaultConfig(engCfg.K)
	pcfg.QualitySteps = 300
	pcfg.LatencySteps = 120
	if _, err := eng.TrainFleet(train, pcfg); err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate a fresh trace once (policy-independent), then replay it
	//    under exhaustive search and under Cottage.
	eval := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 2, NumQueries: 800, QPS: 60})
	evs := eng.EvaluateAll(eval)

	for _, policy := range []engine.Policy{
		baselines.Exhaustive{},
		baselines.NewTaily(),
		core.NewCottage(),
	} {
		sm := engine.Summarize(eng.Run(policy, evs))
		fmt.Printf("%-12s avg %6.2f ms   p95 %6.2f ms   P@10 %.3f   ISNs %5.2f   power %5.2f W\n",
			sm.Policy, sm.MeanLatency, sm.P95Latency, sm.MeanPAtK, sm.MeanISNs, sm.AvgPowerW)
	}

	// 4. Look inside one decision: the per-ISN reports and the budget
	//    Algorithm 1 assigns.
	cot := core.NewCottage()
	eng.Cluster.Reset()
	q := eval[0]
	reports := cot.Reports(eng, q, q.ArrivalMS)
	res := core.DetermineBudget(reports, eng.Cluster.Ladder, core.BudgetOptions{Downclock: true})
	fmt.Printf("\nquery %v -> budget %.2f ms, %d ISNs selected, %d cut\n",
		q.Terms, res.BudgetMS, len(res.Selected), len(res.Cut))
	for _, a := range res.Selected {
		mode := "default"
		if a.Boosted {
			mode = "boosted"
		}
		if a.Downclocked {
			mode = "downclocked"
		}
		fmt.Printf("  ISN %2d at %.1f GHz (%s)\n", a.ISN, a.Freq, mode)
	}
}
