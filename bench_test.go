// Benchmarks, one per table/figure of the paper's evaluation (see
// DESIGN.md's experiment index), plus micro-benchmarks for the substrate
// layers. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigNN times the work behind that figure; the figure's
// actual rows/series are produced by cmd/cottage-bench.
package cottage

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/harness"
	"cottage/internal/index"
	"cottage/internal/nn"
	"cottage/internal/predict"
	"cottage/internal/search"
	"cottage/internal/xrand"
)

var (
	benchOnce  sync.Once
	benchSetup *harness.Setup
	benchErr   error
)

// setupBench builds a reduced harness setup shared by every benchmark.
func setupBench(b *testing.B) *harness.Setup {
	b.Helper()
	benchOnce.Do(func() {
		cfg := harness.QuickSetupConfig()
		cfg.CorpusCfg.NumDocs = 6000
		cfg.CorpusCfg.VocabSize = 6000
		cfg.TrainQueries = 600
		cfg.EvalQueries = 600
		cfg.PredictCfg.QualitySteps = 250
		cfg.PredictCfg.LatencySteps = 120
		benchSetup, benchErr = harness.Build(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// replay times one policy replay over the evaluated Wikipedia trace.
func replay(b *testing.B, p engine.Policy) {
	s := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Engine.Run(p, s.WikiEval)
	}
}

// BenchmarkTable1Features times Table I feature extraction via the quality
// predictor path (features + inference).
func BenchmarkTable1Features(b *testing.B) {
	s := setupBench(b)
	p := s.Engine.Fleet.Predictors[0]
	sh := s.Engine.Shards[0]
	terms := s.WikiQueries[0].Terms
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(sh, terms)
	}
}

// BenchmarkFig2LatencyQualityVariation times the exhaustive evaluation
// pass that produces Fig. 2's histograms.
func BenchmarkFig2LatencyQualityVariation(b *testing.B) {
	replay(b, baselines.Exhaustive{})
}

// BenchmarkFig4FrequencySweep times a DVFS sweep of a query across the
// frequency ladder.
func BenchmarkFig4FrequencySweep(b *testing.B) {
	s := setupBench(b)
	cycles := s.WikiEval[0].Cycles[0]
	ladder := s.Engine.Cluster.Ladder
	b.ResetTimer()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		for _, f := range ladder.Levels {
			acc += cycles / (f * 1e6)
		}
	}
	_ = acc
}

// BenchmarkFig6GammaFit times fitting and scoring the Gamma model against
// a real score distribution.
func BenchmarkFig6GammaFit(b *testing.B) {
	s := setupBench(b)
	var buf discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := harness.Fig6(s, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7QualityPredictor times quality-model inference, the
// quantity on Fig. 7b's right axis.
func BenchmarkFig7QualityPredictor(b *testing.B) {
	s := setupBench(b)
	p := s.Engine.Fleet.Predictors[0]
	sh := s.Engine.Shards[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(sh, s.WikiQueries[i%len(s.WikiQueries)].Terms)
	}
}

// BenchmarkFig7PaperNet times inference at the paper's exact 5x128
// architecture.
func BenchmarkFig7PaperNet(b *testing.B) {
	net := nn.New(nn.PaperConfig(15, 11, 1))
	p := net.NewPredictor()
	x := make([]float64, 15)
	for i := range x {
		x[i] = float64(i) * 1.7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Classify(x)
	}
}

// BenchmarkFig8LatencyPredictor times training the latency model for one
// ISN at the paper's 60-iteration budget.
func BenchmarkFig8LatencyPredictor(b *testing.B) {
	s := setupBench(b)
	ds := s.TrainData
	cfg := predict.DefaultConfig(10)
	cfg.QualitySteps = 10
	cfg.LatencySteps = 60
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := predict.Train(&predict.Dataset{K: ds.K, PerISN: ds.PerISN[:1]}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9BudgetDetermination times Algorithm 1 itself.
func BenchmarkFig9BudgetDetermination(b *testing.B) {
	s := setupBench(b)
	cot := core.NewCottage()
	q := s.WikiQueries[0]
	reports := cot.Reports(s.Engine, q, 0)
	ladder := s.Engine.Cluster.Ladder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.DetermineBudget(reports, ladder, core.BudgetOptions{Downclock: true})
	}
}

// BenchmarkFig10OverallLatency times a full Cottage trace replay — the
// run behind Fig. 10's latency series.
func BenchmarkFig10OverallLatency(b *testing.B) {
	replay(b, core.NewCottage())
}

// BenchmarkFig11Quality times the Taily replay used in the quality
// comparison.
func BenchmarkFig11Quality(b *testing.B) {
	replay(b, baselines.NewTaily())
}

// BenchmarkFig12Scatter times computing the per-query latency/quality
// points for the scatter figure.
func BenchmarkFig12Scatter(b *testing.B) {
	s := setupBench(b)
	res := s.Engine.Run(core.NewCottage(), s.WikiEval)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		good := 0
		for _, o := range res.Outcomes {
			if o.PAtK >= 0.9 && o.LatencyMS < 5 {
				good++
			}
		}
		_ = good
	}
}

// BenchmarkFig13RankS times the Rank-S replay (CSI lookups dominate).
func BenchmarkFig13RankS(b *testing.B) {
	s := setupBench(b)
	replay(b, s.RankS)
}

// BenchmarkFig14Power times the aggregation-policy replay with power
// accounting.
func BenchmarkFig14Power(b *testing.B) {
	replay(b, baselines.NewAggregation())
}

// BenchmarkFig15Ablation times the Cottage-withoutML replay (Gamma
// estimation on every query).
func BenchmarkFig15Ablation(b *testing.B) {
	replay(b, core.NewCottageNoML())
}

// BenchmarkAblationBoost compares the boost-disabled variant (the
// DESIGN.md ablation on frequency boosting).
func BenchmarkAblationBoost(b *testing.B) {
	replay(b, &core.Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: false, Downclock: true, LatencyMargin: 0.5})
}

// BenchmarkAblationKOver2 compares the strict top-K variant (no K/2
// relaxation).
func BenchmarkAblationKOver2(b *testing.B) {
	replay(b, &core.Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: true, Downclock: true, StrictTopK: true, LatencyMargin: 0.5})
}

// BenchmarkPruningMaxScoreVsExhaustive quantifies the dynamic-pruning
// speedup at one ISN (DESIGN.md ablation 1).
func BenchmarkPruningMaxScoreVsExhaustive(b *testing.B) {
	s := setupBench(b)
	sh := s.Engine.Shards[0]
	q := s.WikiQueries[1].Terms
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.Exhaustive(sh, q, 10)
		}
	})
	b.Run("maxscore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.MaxScore(sh, q, 10)
		}
	})
	b.Run("wand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.WAND(sh, q, 10)
		}
	})
	b.Run("maxscore-bm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.MaxScoreBM(sh, q, 10)
		}
	})
	b.Run("wand-bm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = search.WANDBM(sh, q, 10)
		}
	})
}

var (
	largeShardOnce sync.Once
	largeShard     *index.Shard
)

func buildLargeShard() *index.Shard {
	largeShardOnce.Do(func() {
		bld := index.NewBuilder(0, index.DefaultBM25(), 10)
		rng := xrand.New(7)
		const vocabSize = 4000
		vocab := make([]string, vocabSize)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("w%03d", i)
		}
		zipf := xrand.NewZipf(rng, 1.07, vocabSize)
		for d := 0; d < 50000; d++ {
			topic := d / 1000
			n := 40 + rng.Intn(160)
			terms := make(map[string]int)
			for i := 0; i < n; i++ {
				terms[vocab[zipf.Draw()]]++
			}
			// Each topic owns three terms that run hot across its range.
			for j := 0; j < 3; j++ {
				terms[vocab[(topic*37+j*13)%vocabSize]] += 6 + rng.Intn(10)
			}
			bld.Add(int64(d), terms, n)
		}
		largeShard = bld.Finalize()
	})
	return largeShard
}

// BenchmarkPruningLargeShard is the block-max acceptance benchmark: a
// single ISN at realistic list lengths (50k docs, Zipfian vocabulary, so
// frequent terms span hundreds of 64-posting blocks) with topically
// clustered term frequencies — each topic's terms carry high TFs inside
// the topic's contiguous 1000-document range and incidental TF-1
// occurrences elsewhere, the structure document-reordered real indexes
// have and the reason block bounds have regions to veto. The -bm
// variants must beat their global-bound ancestors here; the quick-scale
// harness shards (a few hundred docs per ISN) are too small for
// skipping to show.
func BenchmarkPruningLargeShard(b *testing.B) {
	sh := buildLargeShard()
	// A stopword-frequency term plus a frequent term whose high-TF docs
	// cluster in one topic range: global per-term bounds cannot prune
	// (nearly every posting's global ceiling matches the threshold), so
	// plain WAND degenerates to a full merge — while the per-block
	// quantized bounds rule out the entire TF-1 remainder of both lists
	// without decoding it. This is the workload block-max evaluation
	// exists for.
	q := []string{"w000", "w013"}
	for _, bench := range []struct {
		name string
		eval search.Evaluator
	}{
		{"maxscore", search.MaxScore},
		{"maxscore-bm", search.MaxScoreBM},
		{"wand", search.WAND},
		{"wand-bm", search.WANDBM},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bench.eval(sh, q, 10)
			}
		})
	}
}

// BenchmarkEvaluateQuery times the policy-independent evaluation of one
// query across all shards.
func BenchmarkEvaluateQuery(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Engine.Evaluate(s.WikiQueries[i%len(s.WikiQueries)])
	}
}

// BenchmarkOracle times the oracle-quality replay used in the predictor
// error analysis.
func BenchmarkOracle(b *testing.B) {
	s := setupBench(b)
	replay(b, core.NewCottageOracle(s.Engine, s.WikiEval))
}

// discard is a minimal io.Writer that drops output (io.Discard with a
// concrete type so the compiler can devirtualize in benchmarks).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

var _ io.Writer = discard{}
