module cottage

go 1.22
