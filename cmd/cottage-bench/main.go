// Command cottage-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cottage-bench [-experiment all|table1|table2|fig2|fig4|fig6|fig7|fig8|
//	               fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablations]
//	              [-scale quick|full] [-out results.txt]
//
// The full scale matches EXPERIMENTS.md (48K documents, 16 ISNs, 3000
// training queries, 10K evaluation queries per trace) and takes several
// minutes, most of it predictor training and the two trace evaluations.
// The quick scale reproduces every ordering in under a minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cottage/internal/harness"
	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cottage-bench: ")
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.String("scale", "quick", "setup scale: quick or full")
		outPath    = flag.String("out", "", "write results to this file instead of stdout")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvDir     = flag.String("csv", "", "export raw per-query outcomes of the policy comparison to CSVs in this directory")
		debugAddr  = flag.String("debug-addr", "", "HTTP debug listener for the simulated twin (/metrics, /debug/traces); empty = off")
		replicas   = flag.Int("replicas", 1, "replicas per shard in the simulated twin (the replication extra sweeps its own factors)")
		sloP99MS   = flag.Float64("slo-p99-ms", harness.AutoscaleSLOp99MS, "p99 latency SLO the autoscale extra provisions for")
		replanMS   = flag.Float64("replan-interval-ms", harness.AutoscaleReplanIntervalMS, "closed-loop replan cadence in virtual ms")
		cooldownMS = flag.Float64("scale-cooldown-ms", harness.AutoscaleScaleCooldownMS, "scale-down cooldown in virtual ms (0 = 3x the replan interval)")
		hedgePred  = flag.Bool("hedge-predictive", false, "hedge twin legs at dispatch when the predicted leg latency crosses -hedge-threshold-ms (instead of a fixed timer)")
		hedgeThMS  = flag.Float64("hedge-threshold-ms", 0, "predicted leg latency (ms) above which -hedge-predictive duplicates a leg")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		for _, e := range harness.Extras() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var cfg harness.SetupConfig
	switch *scale {
	case "quick":
		cfg = harness.QuickSetupConfig()
	case "full":
		cfg = harness.DefaultSetupConfig()
	default:
		log.Fatalf("unknown scale %q (want quick or full)", *scale)
	}
	if *replicas < 1 {
		log.Fatalf("-replicas %d < 1", *replicas)
	}
	cfg.EngineCfg.Cluster.Replicas = *replicas
	if *sloP99MS <= 0 {
		log.Fatalf("-slo-p99-ms %v <= 0", *sloP99MS)
	}
	if *replanMS <= 0 {
		log.Fatalf("-replan-interval-ms %v <= 0", *replanMS)
	}
	if *cooldownMS < 0 {
		log.Fatalf("-scale-cooldown-ms %v < 0", *cooldownMS)
	}
	harness.AutoscaleSLOp99MS = *sloP99MS
	harness.AutoscaleReplanIntervalMS = *replanMS
	harness.AutoscaleScaleCooldownMS = *cooldownMS
	if *hedgePred && *hedgeThMS <= 0 {
		log.Fatal("-hedge-predictive needs -hedge-threshold-ms > 0")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	log.Printf("building %s setup (%d docs, %d ISNs, %d train / %d eval queries)...",
		*scale, cfg.CorpusCfg.NumDocs, cfg.EngineCfg.NumShards, cfg.TrainQueries, cfg.EvalQueries)
	start := time.Now()
	s, err := harness.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("setup ready in %v", time.Since(start).Round(time.Millisecond))
	if *hedgePred {
		// Arm predictive hedging on the shared twin. Replicated runs need
		// somewhere to send the duplicate, so insist on a replicated fleet
		// rather than silently never hedging.
		if *replicas < 2 {
			log.Fatal("-hedge-predictive needs -replicas >= 2")
		}
		s.Engine.HedgePredictive = true
		s.Engine.HedgeThresholdMS = *hedgeThMS
	}

	if *debugAddr != "" {
		// The simulated twin shares the live transport's observability
		// surface: experiments that replay under an observer (predacc, and
		// any Run while Obs is attached) land here, with the same phase
		// attribution and flight recorder as the live aggregator. Mid-run
		// scrapes see approximate snapshots; the printed tables stay
		// authoritative.
		s.Engine.Obs = obs.NewObserver(len(s.Engine.Shards), 512)
		s.Engine.Obs.Flight = obs.NewFlightRecorder(32, 32, 0)
		s.Engine.Anatomy = anatomy.NewCollector(1024)
		dbg, err := obs.StartDebug(*debugAddr, s.Engine.Obs,
			obs.Endpoint{Path: "/debug/anatomy", Handler: anatomy.Handler(s.Engine.Anatomy)})
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /debug/traces, /debug/anatomy, /debug/flight)", dbg.Addr())
	}

	run := func(e harness.Experiment) {
		fmt.Fprintf(out, "\n=== %s — %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(s, out); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		log.Printf("%s done in %v", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *csvDir != "" {
		log.Printf("exporting per-query CSVs to %s...", *csvDir)
		if err := harness.ExportCSVFromSetup(s, *csvDir); err != nil {
			log.Fatal(err)
		}
	}

	switch *experiment {
	case "all":
		for _, e := range harness.All() {
			run(e)
		}
		return
	case "extras":
		for _, e := range harness.Extras() {
			run(e)
		}
		return
	}
	e, ok := harness.ByID(*experiment)
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *experiment)
	}
	run(e)
}
