// Command cottage-server runs one ISN over TCP: it loads a shard written
// by cottage-indexer (and optionally its trained predictor) and serves
// search/predict requests for an aggregator (cottage-client).
//
//	cottage-server -shard idx/isn-00.shard -model idx/isn-00.model -listen :7001
//
// -listen accepts a comma-separated list, serving the same shard from
// several independent replica endpoints (each with its own admission
// limiter and fault schedule, as if started as separate processes) —
// handy for exercising cottage-client's replica groups on one machine:
//
//	cottage-server -shard idx/isn-00.shard -listen :7001,:8001
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/integrity"
	"cottage/internal/obs"
	"cottage/internal/overload"
	"cottage/internal/predict"
	"cottage/internal/rpc"
	"cottage/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cottage-server: ")
	var (
		shardPath = flag.String("shard", "", "path to a .shard file (required)")
		modelPath = flag.String("model", "", "path to a .model file (optional)")
		listen    = flag.String("listen", ":7001", "listen address(es); a comma-separated list serves the shard as that many replica endpoints")
		strategy  = flag.String("strategy", "maxscore", "evaluation strategy: exhaustive|maxscore|wand|taat|maxscore-bm|wand-bm")
		failRate  = flag.Float64("fail-rate", 0, "inject: probability each response write is dropped (connection cut)")
		slowMS    = flag.Float64("slow-ms", 0, "inject: fixed extra delay per response write, in milliseconds")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the injected fault schedule (replayable)")
		inflight  = flag.Int("max-inflight", 0, "admission control: max concurrent searches (0 = unlimited)")
		queueLen  = flag.Int("queue-depth", 64, "admission control: queued searches behind the in-flight cap")
		aimd      = flag.Bool("aimd", false, "adapt -max-inflight AIMD-style (additive increase, halve on shed)")
		drainTO   = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
		debugAddr = flag.String("debug-addr", "", "HTTP debug listener (/metrics, /healthz, /debug/traces, /debug/integrity, /debug/pprof); empty = off")
		scrubBPS  = flag.Int("scrub-bps", 4<<20, "integrity: background scrub pace in bytes/sec (0 disables integrity supervision)")
		repairSrc = flag.String("repair-peer", "", "integrity: comma-separated sibling replica address(es) to fetch verified shard bytes from on quarantine (fallback: re-read -shard from disk)")
	)
	flag.Parse()
	if *shardPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	shard, err := index.LoadFile(*shardPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded shard %d: %d docs, %d terms", shard.ID, shard.NumDocs, shard.NumTerms())

	var pred *predict.ISNPredictor
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		pred, err = predict.DecodeISNPredictor(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded predictor for ISN %d", pred.ISN)
	}

	strat, ok := search.ParseStrategy(*strategy)
	if !ok {
		log.Fatalf("unknown strategy %q", *strategy)
	}

	// The observer is created up front (when a debug listener is asked
	// for) so the integrity managers can mirror their counters onto it.
	var observer *obs.Observer
	if *debugAddr != "" {
		observer = obs.NewObserver(1, 256)
		// Serve-side flight recorder: keeps the slowest requests per minute
		// (queue wait + service time in their spans) at /debug/flight even
		// after they age out of the trace ring.
		observer.Flight = obs.NewFlightRecorder(32, 32, 60_000_000)
	}

	// One server per listen address: the shard and predictor are shared
	// (read-only), but each replica endpoint gets its own admission
	// limiter, fault schedule and integrity manager, just like separately
	// started processes.
	addrs := strings.Split(*listen, ",")
	srvs := make([]*rpc.Server, len(addrs))
	listeners := make([]net.Listener, len(addrs))
	var managers []*integrity.Manager
	for i, addr := range addrs {
		addr = strings.TrimSpace(addr)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving on %s", l.Addr())
		srv := &rpc.Server{Shard: shard, Pred: pred, Strategy: strat}
		if *scrubBPS > 0 {
			// Integrity supervision: the query-time checksum gate plus a
			// paced background scrubber; a detected mismatch quarantines
			// this endpoint (typed CodeQuarantined to the coordinator) and
			// repair re-fetches verified bytes from a sibling replica,
			// falling back to re-reading the shard file.
			mcfg := integrity.Config{
				ShardID:          shard.ID,
				Replica:          i,
				ScrubBytesPerSec: *scrubBPS,
				Fetch:            repairFetch(*repairSrc, *shardPath),
			}
			if observer != nil {
				mcfg.Metrics = integrity.NewMetrics(observer.Reg, obs.L("replica", strconv.Itoa(i)))
			}
			mgr := integrity.NewManager(mcfg, shard)
			srv.Integrity = mgr
			managers = append(managers, mgr)
		}
		if *inflight > 0 {
			lim := overload.NewLimiter(*inflight, *queueLen, nil)
			if *aimd {
				// The configured cap is the ceiling; AIMD probes downward from
				// it under sheds and climbs back as completions succeed.
				lim.EnableAIMD(1, *inflight)
			}
			srv.Limit = lim
			log.Printf("admission control on: %d in-flight, queue %d, aimd=%v", *inflight, *queueLen, *aimd)
		}
		if *failRate > 0 || *slowMS > 0 {
			// Chaos mode: the injector mangles this ISN's response stream so
			// aggregator-side retries/hedging can be exercised against a real
			// process. The seed makes a fault schedule replayable; each
			// replica endpoint draws its own schedule from seed+row.
			in := faults.NewInjector(*faultSeed + uint64(i))
			in.SetPlan(0, faults.Plan{DropProb: *failRate, SlowMS: *slowMS})
			srv.Faults = in
			l = faults.WrapListener(l, in, 0)
			log.Printf("fault injection on: drop prob %.2f, slow %.1f ms (seed %d)", *failRate, *slowMS, *faultSeed+uint64(i))
		}
		srvs[i], listeners[i] = srv, l
	}
	stopIntegrity := make(chan struct{})
	defer close(stopIntegrity)
	if len(managers) > 0 {
		// Background scrub/repair loops, one per endpoint, stopped during
		// shutdown. The wall-clock tick only paces the loop; each step
		// scrubs tick*scrub-bps bytes.
		for _, m := range managers {
			go m.RunLoop(stopIntegrity, 200*time.Millisecond)
		}
		first := managers[0]
		log.Printf("integrity supervision on: scrub %d B/s (full sweep every %.1f s), repair from %q",
			*scrubBPS, float64(first.ScrubEpochMS())/1000, *repairSrc)
	}
	if *debugAddr != "" {
		// The debug surface reflects the first replica endpoint; siblings
		// are separate servers and would need their own listeners.
		srvs[0].Obs = observer
		var extras []obs.Endpoint
		if len(managers) > 0 {
			extras = append(extras, obs.Endpoint{Path: "/debug/integrity", Handler: integrity.Handler(managers[0].Snapshot)})
		}
		dbg, err := obs.StartDebug(*debugAddr, observer, extras...)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /healthz, /debug/traces, /debug/flight, /debug/integrity)", dbg.Addr())
	}

	// Graceful lifecycle: first SIGINT/SIGTERM drains in-flight requests
	// for up to -drain-timeout, a second signal (or an expired window)
	// force-closes whatever remains.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, len(srvs))
	for i := range srvs {
		i := i
		go func() { serveErr <- srvs[i].Serve(listeners[i]) }()
	}
	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigCh:
		log.Printf("%v: draining (up to %v, signal again to force)", sig, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		go func() {
			<-sigCh
			cancel()
		}()
		var wg sync.WaitGroup
		for _, srv := range srvs {
			wg.Add(1)
			go func(srv *rpc.Server) {
				defer wg.Done()
				if err := srv.Shutdown(ctx); err != nil {
					log.Printf("drain cut short: %v", err)
				}
			}(srv)
		}
		wg.Wait()
		cancel()
		for range srvs {
			if err := <-serveErr; err != nil {
				log.Printf("serve: %v", err)
			}
		}
	}
	var served, shed uint64
	for _, srv := range srvs {
		served += srv.Served()
		shed += srv.Shed()
	}
	log.Printf("served %d search requests, shed %d", served, shed)
}

// repairFetch builds the verified-bytes source a quarantined endpoint
// repairs from: each -repair-peer sibling in order (shard transfer over
// the rpc fetch verb, re-verified checksum-by-checksum on decode), then
// the local shard file as a last resort. The manager re-validates
// whatever comes back before swapping it in, so a rotted source can
// never be promoted.
func repairFetch(peers, shardPath string) func() (*index.Shard, error) {
	var addrs []string
	for _, a := range strings.Split(peers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return func() (*index.Shard, error) {
		var firstErr error
		for _, addr := range addrs {
			c, err := rpc.Dial(addr)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("peer %s: %w", addr, err)
				}
				continue
			}
			s, err := c.FetchShard()
			c.Close()
			if err == nil {
				return s, nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", addr, err)
			}
		}
		s, err := index.LoadFile(shardPath)
		if err != nil {
			if firstErr != nil {
				return nil, fmt.Errorf("%v; disk fallback: %w", firstErr, err)
			}
			return nil, err
		}
		return s, nil
	}
}
