// Command cottage-client is the aggregator-side CLI: it connects to a set
// of cottage-server ISNs, replays queries against them under either the
// exhaustive or the Cottage coordinated protocol, and reports latency and
// result agreement.
//
//	cottage-client -servers 127.0.0.1:7001,127.0.0.1:7002 -mode cottage \
//	               -queries queries.txt
//
// queries.txt holds one query per line (whitespace-separated terms). With
// -compare, every query runs under both protocols and the client reports
// Cottage's overlap with the exhaustive top-K.
//
// Replicated fleets group the addresses into replica groups — one group
// per logical shard, every per-query leg routed to the group's best live
// replica with mid-query failover. Either list groups explicitly (';'
// between shards, ',' between a shard's replicas):
//
//	cottage-client -servers '127.0.0.1:7001,127.0.0.1:8001;127.0.0.1:7002,127.0.0.1:8002'
//
// or give a flat list plus -replicas R (row-major: the first half is
// replica row 0, the second half row 1 — the layout from starting the
// whole server fleet once per row):
//
//	cottage-client -servers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:8001,127.0.0.1:8002 -replicas 2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"cottage/internal/core"
	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
	"cottage/internal/obs/slo"
	"cottage/internal/replica"
	"cottage/internal/rpc"
	"cottage/internal/search"
	"cottage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cottage-client: ")
	var (
		servers   = flag.String("servers", "", "ISN addresses: ',' between replicas/shards, ';' between shard groups (required)")
		replicas  = flag.Int("replicas", 1, "replicas per shard for a flat -servers list (row-major); ignored when -servers uses ';' groups")
		mode      = flag.String("mode", "cottage", "protocol: exhaustive|cottage")
		queries   = flag.String("queries", "", "file with one query per line")
		tracePath = flag.String("trace", "", "timed trace (gob, from cottage-indexer -traceout) for paced replay")
		speedup   = flag.Float64("speedup", 1, "replay the trace this many times faster than recorded")
		k         = flag.Int("k", 10, "results per query")
		compare   = flag.Bool("compare", false, "run both protocols and report overlap")
		retries   = flag.Int("retries", 2, "transport retries per request (reconnect + capped exponential backoff)")
		hedgeMS   = flag.Float64("hedge-after-ms", 0, "issue a hedged duplicate request after this many ms (0 = off)")
		hedgePred = flag.Bool("hedge-predictive", false, "hedge from the latency prediction instead of a fixed timer: legs whose queue-corrected prediction exceeds -hedge-threshold-ms are duplicated at dispatch, the rest never (cottage mode only)")
		hedgeThMS = flag.Float64("hedge-threshold-ms", 0, "predicted queue-inclusive latency above which a predictive hedge fires, in ms")
		timeoutMS = flag.Float64("timeout-ms", 2000, "per-round-trip timeout in ms (0 = none)")
		degraded  = flag.String("degraded", "exclude", "budget policy for ISNs with missing predictions: exclude|conservative")
		brkN      = flag.Int("breaker-threshold", 3, "open an ISN's circuit breaker after this many consecutive transport failures (0 = off)")
		brkCoolMS = flag.Float64("breaker-cooldown-ms", 500, "circuit-breaker cooldown before a half-open probe, in ms")
		probeMS   = flag.Float64("probe-interval-ms", 0, "background health-probe interval for broken/open ISNs, in ms (0 = off)")
		anytime   = flag.Bool("anytime", false, "budget-missing ISNs return exact truncated top-K answers with a score bound instead of being dropped")
		debugAddr = flag.String("debug-addr", "", "HTTP debug listener (/metrics, /healthz, /debug/traces, /debug/accuracy, /debug/anatomy, /debug/slo, /debug/flight, /debug/pprof); empty = off")
		traceOut  = flag.String("trace-out", "", "write the recorded query traces as JSONL to this file on exit")
		sloLatMS  = flag.Float64("slo-latency-ms", 0, "latency SLO threshold in ms: queries above it burn the error budget and drive multi-window burn-rate alerting (0 = off)")
		sloTarget = flag.Float64("slo-target", 0.01, "SLO error budget: tolerated bad fraction for the latency and quality objectives (0.01 = 99% SLO)")
		flightOut = flag.String("flight-out", "", "flight-recorder JSONL dump path: written at the first SLO page, else at exit (empty = off)")
		pageProf  = flag.String("page-cpuprofile", "", "capture a 5 s CPU profile to this file on the first SLO page (empty = off)")
	)
	flag.Parse()
	if *servers == "" || (*queries == "" && *tracePath == "") {
		flag.Usage()
		os.Exit(2)
	}

	addrGroups, err := replica.ParseGroups(*servers)
	if err != nil {
		log.Fatal(err)
	}
	if !strings.Contains(*servers, ";") && *replicas > 1 {
		flat := make([]string, len(addrGroups))
		for i, g := range addrGroups {
			flat[i] = g[0]
		}
		if addrGroups, err = replica.GroupFlat(flat, *replicas); err != nil {
			log.Fatal(err)
		}
	}
	var clients []*rpc.Client
	var groups [][]int
	replicated := false
	for _, g := range addrGroups {
		idx := make([]int, 0, len(g))
		if len(g) > 1 {
			replicated = true
		}
		for _, addr := range g {
			c, err := rpc.Dial(addr)
			if err != nil {
				// Not fatal: treat an ISN that is down at startup like one
				// that dies later — every call redials through the retry
				// path, and the aggregator degrades around it meanwhile.
				log.Printf("warning: %s unreachable: %v (will redial per request)", addr, err)
				c = rpc.Offline(addr)
			}
			defer c.Close()
			if *timeoutMS > 0 {
				c.SetTimeout(time.Duration(*timeoutMS * float64(time.Millisecond)))
			}
			c.SetRetryPolicy(rpc.RetryPolicy{Max: *retries})
			if err := c.Ping(); err != nil {
				// Not fatal: the aggregator degrades around unhealthy ISNs
				// per query, and retries may yet bring this one back.
				log.Printf("warning: %s unhealthy: %v", addr, err)
			}
			idx = append(idx, len(clients))
			clients = append(clients, c)
		}
		groups = append(groups, idx)
	}
	agg := rpc.NewAggregator(clients, *k)
	if replicated {
		if err := agg.EnableReplicaGroups(groups); err != nil {
			log.Fatal(err)
		}
		log.Printf("%d shards x replica groups over %d servers", len(groups), len(clients))
	}
	agg.HedgeAfter = time.Duration(*hedgeMS * float64(time.Millisecond))
	agg.HedgePredictive = *hedgePred
	agg.HedgeThresholdMS = *hedgeThMS
	if *hedgePred && *hedgeThMS <= 0 {
		log.Fatal("-hedge-predictive needs -hedge-threshold-ms > 0")
	}
	agg.Anytime = *anytime
	if *debugAddr != "" || *traceOut != "" || *flightOut != "" || *sloLatMS > 0 {
		agg.Obs = obs.NewObserver(len(clients), 512)
		// Always-on flight recorder: slowest 32 traces per minute plus a
		// 32-trace reservoir sample, browsable at /debug/flight.
		agg.Obs.Flight = obs.NewFlightRecorder(32, 32, 60_000_000)
		agg.Anatomy = anatomy.NewCollector(1024)
	}
	var extras []obs.Endpoint
	if agg.Anatomy != nil {
		extras = append(extras, obs.Endpoint{Path: "/debug/anatomy", Handler: anatomy.Handler(agg.Anatomy)})
	}
	paged := false
	var profWait sync.WaitGroup
	defer profWait.Wait() // don't exit mid-capture: the profile flushes on return
	if *sloLatMS > 0 {
		mon := slo.New(slo.Config{})
		agg.SLO = &slo.QuerySLO{
			LatencyMS: *sloLatMS,
			Latency:   mon.Objective("latency", *sloTarget),
			Quality:   mon.Objective("quality", *sloTarget),
		}
		mon.OnPage(func(o *slo.Objective) {
			log.Printf("SLO PAGE: objective %q burning error budget in both windows", o.Name())
			if paged {
				return
			}
			paged = true
			if *flightOut != "" {
				if n, err := agg.Obs.Flight.DumpFile(*flightOut); err != nil {
					log.Printf("flight dump: %v", err)
				} else {
					log.Printf("flight recorder: dumped %d traces to %s", n, *flightOut)
				}
			}
			if *pageProf != "" {
				profWait.Add(1)
				go func() {
					defer profWait.Done()
					if err := obs.CaptureCPUProfile(*pageProf, 5*time.Second); err != nil {
						log.Printf("page CPU profile: %v", err)
					} else {
						log.Printf("page CPU profile written to %s", *pageProf)
					}
				}()
			}
		})
		mon.Register(agg.Obs.Reg)
		extras = append(extras, obs.Endpoint{Path: "/debug/slo", Handler: slo.Handler(mon)})
	}
	if *debugAddr != "" {
		dbg, err := obs.StartDebug(*debugAddr, agg.Obs, extras...)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /debug/traces, /debug/accuracy, /debug/anatomy, /debug/slo, /debug/flight)", dbg.Addr())
	}
	if *brkN > 0 {
		agg.EnableBreakers(*brkN, time.Duration(*brkCoolMS*float64(time.Millisecond)))
	}
	var prober *rpc.Prober
	if *probeMS > 0 {
		prober = agg.StartProber(time.Duration(*probeMS * float64(time.Millisecond)))
		defer agg.StopProber()
	}
	switch *degraded {
	case "exclude":
		agg.Degraded = core.DegradedExclude
	case "conservative":
		agg.Degraded = core.DegradedConservative
	default:
		log.Fatalf("unknown degraded mode %q", *degraded)
	}

	var queryList [][]string
	var arrivals []float64
	if *tracePath != "" {
		qs, err := trace.LoadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qs {
			queryList = append(queryList, q.Terms)
			arrivals = append(arrivals, q.ArrivalMS)
		}
		log.Printf("replaying %d-query trace at %.1fx speed", len(qs), *speedup)
	} else {
		f, err := os.Open(*queries)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			terms := strings.Fields(sc.Text())
			if len(terms) == 0 {
				continue
			}
			queryList = append(queryList, terms)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			log.Fatal(err)
		}
		f.Close()
	}

	var totalMS, overlapSum float64
	n := 0
	replayStart := time.Now()
	for qi, terms := range queryList {
		if arrivals != nil && *speedup > 0 {
			// Paced replay: wait until the recorded (scaled) arrival time.
			due := time.Duration(arrivals[qi] / *speedup * float64(time.Millisecond))
			if wait := due - time.Since(replayStart); wait > 0 {
				time.Sleep(wait)
			}
		}
		start := time.Now()
		var res rpc.Result
		var err error
		switch *mode {
		case "exhaustive":
			res, err = agg.SearchExhaustive(terms)
		case "cottage":
			res, err = agg.SearchCottage(terms)
		default:
			log.Fatalf("unknown mode %q", *mode)
		}
		if err != nil {
			log.Fatalf("query %v: %v", terms, err)
		}
		elapsed := time.Since(start)
		totalMS += float64(elapsed.Microseconds()) / 1000
		n++
		failed := ""
		if len(res.Failed) > 0 {
			failed = fmt.Sprintf("  DEGRADED (ISNs %v down)", res.Failed)
		}
		fmt.Printf("%-40s %3d hits  %2d ISNs  budget %6.2f ms  %8.3f ms%s\n",
			strings.Join(terms, " "), len(res.Hits), len(res.Selected), res.BudgetMS,
			float64(elapsed.Microseconds())/1000, failed)
		if *compare {
			exh, err := agg.SearchExhaustive(terms)
			if err != nil {
				log.Fatal(err)
			}
			if len(exh.Hits) > 0 {
				want := search.DocSet(exh.Hits)
				ov := float64(search.Overlap(res.Hits, want)) / float64(len(exh.Hits))
				overlapSum += ov
				fmt.Printf("%-40s overlap with exhaustive: %.2f\n", "", ov)
			}
		}
	}
	if n == 0 {
		log.Fatal("no queries")
	}
	fmt.Printf("\n%d queries, mean wall latency %.3f ms", n, totalMS/float64(n))
	if *compare {
		fmt.Printf(", mean overlap %.3f", overlapSum/float64(n))
	}
	fmt.Println()
	if st := agg.Stats(); st.Retries > 0 || st.Hedges > 0 || st.FailoversPredict+st.FailoversSearch > 0 {
		fmt.Printf("transport: %d retries, %d hedges (%d won, %d cancelled), %d failovers (%d predict, %d search)\n",
			st.Retries, st.Hedges, st.HedgeWins, st.HedgesCancelled,
			st.FailoversPredict+st.FailoversSearch, st.FailoversPredict, st.FailoversSearch)
	}
	if prober != nil {
		probes, revived := prober.Stats()
		if probes > 0 {
			fmt.Printf("health prober: %d probes, %d revivals\n", probes, revived)
		}
	}
	if agg.Anatomy != nil && agg.Anatomy.Observed() > 0 {
		fmt.Println("\ntail anatomy:")
		if err := agg.Anatomy.Report().WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if agg.SLO != nil {
		fast, slow := agg.SLO.Latency.Burn()
		fmt.Printf("latency SLO (%.1f ms @ %.3g budget): state=%s burn fast=%.2f slow=%.2f pages=%d\n",
			*sloLatMS, *sloTarget, agg.SLO.Latency.State(), fast, slow, agg.SLO.Latency.Pages())
	}
	if *flightOut != "" && !paged {
		if nTr, err := agg.Obs.Flight.DumpFile(*flightOut); err != nil {
			log.Fatal(err)
		} else {
			log.Printf("flight recorder: dumped %d traces to %s", nTr, *flightOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := agg.Obs.Traces.WriteJSONL(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d traces to %s (ring keeps the last 512)", len(agg.Obs.Traces.Recent(0)), *traceOut)
	}
}
