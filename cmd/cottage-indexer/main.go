// Command cottage-indexer builds a sharded inverted index and writes one
// .shard file per ISN, ready for cottage-server.
//
// Two input modes:
//
//	cottage-indexer -out ./idx -shards 4                # synthetic corpus
//	cottage-indexer -out ./idx -shards 4 -input docs.txt # one document per line
//
// With -train N it additionally trains per-ISN quality/latency predictors
// on N synthetic queries and writes one .model file per shard, so
// cottage-server can answer prediction requests.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cottage/internal/cluster"
	"cottage/internal/index"
	"cottage/internal/obs"
	"cottage/internal/predict"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cottage-indexer: ")
	var (
		out    = flag.String("out", "./index", "output directory")
		nshard = flag.Int("shards", 4, "number of shards (ISNs)")
		input  = flag.String("input", "", "text file, one document per line (default: synthetic corpus)")
		docs   = flag.Int("docs", 12000, "synthetic corpus size")
		seed   = flag.Uint64("seed", 1, "synthetic corpus seed")
		train  = flag.Int("train", 0, "train predictors on this many synthetic queries (synthetic corpus only)")
		k      = flag.Int("k", 10, "top-K the statistics and predictors target")
		pos    = flag.Bool("positions", false, "record term positions (enables phrase queries; -input mode only)")
		qout   = flag.String("queriesout", "", "also write sample queries (one per line) for cottage-client")
		tout   = flag.String("traceout", "", "also write a timed query trace (gob) for paced replay")
		nq     = flag.Int("numqueries", 200, "how many sample queries to write with -queriesout/-traceout")
		dbgAdr = flag.String("debug-addr", "", "HTTP debug listener during the build (/metrics runtime gauges, /debug/pprof); empty = off")
		verify = flag.Bool("verify", false, "verify existing shard files in -out instead of building (exit 1 on corruption)")
		mstats = flag.Bool("memstats", false, "report postings memory per shard after the build (packed bytes/posting vs the 8-byte flat layout)")
	)
	flag.Parse()

	if *verify {
		if err := verifyShards(*out); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *dbgAdr != "" {
		// Long corpus builds are memory-bound; the listener exposes the Go
		// runtime gauges (heap, GC pause p99, goroutines) and pprof while
		// indexing runs.
		dbg, err := obs.StartDebug(*dbgAdr, obs.NewObserver(1, 8))
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s (/metrics, /debug/pprof)", dbg.Addr())
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var shards []*index.Shard
	var corpus *textgen.Corpus
	if *input != "" {
		var err error
		shards, err = indexTextFile(*input, *nshard, *k, *pos)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if *pos {
			log.Fatal("-positions requires -input (the synthetic corpus is bag-of-words)")
		}
		cfg := textgen.DefaultConfig()
		cfg.NumDocs = *docs
		cfg.Seed = *seed
		corpus = textgen.Generate(cfg)
		alloc := corpus.AllocateTopical(*nshard, max(1, *nshard/5), 0.15, *seed)
		shards = make([]*index.Shard, len(alloc))
		for si, ids := range alloc {
			b := index.NewBuilder(si, index.DefaultBM25(), *k)
			for _, id := range ids {
				d := &corpus.Docs[id]
				terms := make(map[string]int, len(d.Terms))
				for tid, tf := range d.Terms {
					terms[corpus.Vocab[tid]] = tf
				}
				b.Add(int64(id), terms, d.Length)
			}
			shards[si] = b.Finalize()
		}
	}

	for _, s := range shards {
		if err := s.Validate(); err != nil {
			log.Fatalf("shard %d failed validation: %v", s.ID, err)
		}
		path := filepath.Join(*out, fmt.Sprintf("isn-%02d.shard", s.ID))
		if err := s.SaveFile(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d docs, %d terms)", path, s.NumDocs, s.NumTerms())
	}

	if *mstats {
		memStats(shards)
	}

	if *qout != "" {
		if corpus == nil {
			log.Fatal("-queriesout requires the synthetic corpus (omit -input)")
		}
		qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: *seed + 500, NumQueries: *nq, QPS: 10})
		f, err := os.Create(*qout)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, q := range qs {
			fmt.Fprintln(w, strings.Join(q.Terms, " "))
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d queries to %s", len(qs), *qout)
	}

	if *tout != "" {
		if corpus == nil {
			log.Fatal("-traceout requires the synthetic corpus (omit -input)")
		}
		qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: *seed + 600, NumQueries: *nq, QPS: 10})
		if err := trace.SaveFile(*tout, qs); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d-query trace to %s", len(qs), *tout)
	}

	if *train > 0 {
		if corpus == nil {
			log.Fatal("-train requires the synthetic corpus (omit -input)")
		}
		qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: *seed + 100, NumQueries: *train, QPS: 30})
		log.Printf("harvesting ground truth from %d queries...", len(qs))
		ds := predict.Harvest(shards, qs, *k, search.StrategyMaxScore, cluster.DefaultCostModel())
		fleet, err := predict.Train(ds, predict.DefaultConfig(*k))
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range fleet.Predictors {
			path := filepath.Join(*out, fmt.Sprintf("isn-%02d.model", p.ISN))
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := p.Encode(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
}

// memStats reports resident postings bytes per shard under the packed
// block layout against the 8-byte-per-posting flat {doc, tf} layout it
// replaced, so compression claims can be checked on a real build.
func memStats(shards []*index.Shard) {
	totPacked, totPostings := 0, 0
	for _, s := range shards {
		packed, n := s.PackedPostingBytes(), s.NumPostings()
		if n == 0 {
			continue
		}
		totPacked += packed
		totPostings += n
		flat := n * 8
		log.Printf("memstats shard %d: %d postings, packed %d B (%.2f B/posting), flat %d B (8.00 B/posting), %.2fx smaller",
			s.ID, n, packed, float64(packed)/float64(n), flat, float64(flat)/float64(packed))
	}
	if totPostings > 0 {
		log.Printf("memstats total: %d postings, packed %d B (%.2f B/posting) vs flat %d B, %.2fx smaller",
			totPostings, totPacked, float64(totPacked)/float64(totPostings),
			totPostings*8, float64(totPostings*8)/float64(totPacked))
	}
}

// verifyShards loads every .shard file under dir through the eager
// integrity verification (digest + every block checksum + structural
// invariants) and reports per file. Corruption errors are localized to
// (shard, term, block) by the v4 checksums; a pre-checksum v3 file
// verifies structurally and is reported as such.
func verifyShards(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.shard"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .shard files in %s", dir)
	}
	bad := 0
	for _, path := range paths {
		s, err := index.LoadFile(path)
		if err != nil {
			bad++
			log.Printf("FAIL %s: %v", path, err)
			continue
		}
		log.Printf("ok   %s: %d docs, %d terms, %d blocks, digest %08x",
			path, s.NumDocs, s.NumTerms(), s.TotalBlocks(), s.Digest)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d shard files failed verification", bad, len(paths))
	}
	log.Printf("all %d shard files verified clean", len(paths))
	return nil
}

// indexTextFile round-robins lines of a text file across shards.
func indexTextFile(path string, nshard, k int, positions bool) ([]*index.Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	builders := make([]*index.Builder, nshard)
	for i := range builders {
		builders[i] = index.NewBuilder(i, index.DefaultBM25(), k)
		if positions {
			builders[i].EnablePositions()
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	id := int64(0)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		if positions {
			builders[id%int64(nshard)].AddTokens(id, index.Tokenize(line))
		} else {
			builders[id%int64(nshard)].AddText(id, line)
		}
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if id == 0 {
		return nil, fmt.Errorf("no documents in %s", path)
	}
	shards := make([]*index.Shard, nshard)
	for i, b := range builders {
		shards[i] = b.Finalize()
	}
	return shards, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
