// Package cottage is a from-scratch Go reproduction of "Cottage:
// Coordinated Time Budget Assignment for Latency, Quality and Power
// Optimization in Web Search" (HPCA 2022): a distributed search engine
// substrate (inverted index, BM25, MaxScore/WAND pruning), per-ISN neural
// quality/latency predictors, the coordinated time-budget optimizer
// (Algorithm 1) with DVFS frequency boosting, the paper's baselines
// (exhaustive, aggregation policy, Rank-S, Taily) and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// public entry points live under internal/ because this module is a
// research artifact consumed through its binaries (cmd/...) and examples
// (examples/...); promote packages out of internal/ if you embed it.
package cottage
